// Rule/constraint compilation and body execution.
//
// A rule body compiles to an ordered list of steps (greedy ordering: cheap
// filters first, then functional lookups, negation probes, builtins, and
// scans by descending boundness). Execution enumerates bindings over an
// environment of value slots. Semi-naïve evaluation re-runs each rule once
// per scan occurrence with that occurrence reading the round's delta.
//
// Head existentials (unbound head variables in entity-typed positions)
// create fresh entities, memoized per (rule, binding of head-relevant
// variables) so re-evaluation is idempotent.
#ifndef SECUREBLOX_ENGINE_EVAL_H_
#define SECUREBLOX_ENGINE_EVAL_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"
#include "datalog/catalog.h"
#include "engine/builtins.h"
#include "engine/kernels.h"
#include "engine/relation.h"

namespace secureblox::engine {

/// Source of relations during execution (implemented by Workspace).
class RelationStore {
 public:
  virtual ~RelationStore() = default;
  virtual Relation* GetRelation(datalog::PredId pred) = 0;
};

/// Environment: one optional value slot per rule variable.
using Env = std::vector<std::optional<datalog::Value>>;

/// Compiled term: variable slots resolved.
struct CExpr {
  enum class Kind { kSlot, kConst, kArith };
  Kind kind = Kind::kConst;
  int slot = -1;
  datalog::Value constant;
  char op = 0;
  std::shared_ptr<CExpr> lhs, rhs;
};

/// Compiled atom argument pattern.
struct ArgPat {
  enum class Kind {
    kBound,  // slot already holds a value: match/compare
    kBind,   // slot unbound: bind from the tuple / builtin output
    kConst,  // literal constant: match
    kWild,   // anonymous variable in a negation probe: matches anything
    kSame,   // repeated variable within one scan atom: equal to this
             // atom's earlier column `same_col` (the kBind occurrence).
             // The slot is only bound when the row is accepted, so the
             // comparison must read the candidate row, never the
             // environment — env[slot] is still unengaged here.
  };
  Kind kind = Kind::kConst;
  int slot = -1;
  int same_col = -1;  // kSame: earlier column of the same atom to equal
  datalog::Value constant;
};

struct Step {
  enum class Kind {
    kScan,      // enumerate relation (or the round's delta) by pattern
    kLookup,    // functional atom with all keys bound: one probe
    kNegCheck,  // negated atom: probe by bound columns, fail if any match
    kCompare,   // comparison over bound expressions
    kAssign,    // bind a slot from an expression
    kBuiltin,   // builtin function call
    kTypeCheck, // primitive type predicate over a bound slot
  };
  /// How a kScan/kNegCheck step reads its relation. The compiler leaves
  /// kAuto (resolve single-shard vs fan-out from the mask per call — the
  /// pre-planner behavior); planner-built steps carry an explicit choice.
  enum class Probe : uint8_t {
    kAuto,        // decide per call from probe_mask and the shard key
    kScanAll,     // no bound columns: walk every shard's tuple array
    kShardProbe,  // mask covers the shard key: probe exactly one shard
    kFanout,      // indexed probe fanned out over all shards
  };
  Kind kind;
  datalog::PredId pred = datalog::kInvalidPred;
  std::vector<ArgPat> args;
  int occurrence = -1;  // kScan: index among this body's scan occurrences
  datalog::CmpOp cmp_op = datalog::CmpOp::kEq;
  std::shared_ptr<CExpr> lhs, rhs;  // kCompare: both; kAssign: rhs
  int assign_slot = -1;
  const BuiltinImpl* builtin = nullptr;
  std::string builtin_name;
  datalog::ValueKind check_kind = datalog::ValueKind::kInt;  // kTypeCheck
  /// Static probe shape (kScan/kNegCheck), precomputed by ComputeProbeInfo:
  /// bound/const column mask (bit i = column i, first 32 columns) and the
  /// same columns in ascending order — the probe-key recipe the executor
  /// materializes keys from without re-inspecting arg kinds.
  uint32_t probe_mask = 0;
  std::vector<int> key_cols;
  Probe probe = Probe::kAuto;
};

/// Recompute each step's static probe info (probe_mask / key_cols) from its
/// arg patterns. Run by the compiler on every compiled body and by the
/// planner after reordering and rebinding.
void ComputeProbeInfo(std::vector<Step>* steps);

/// One planned body execution: the baseline steps reordered and rebound for
/// a semi-naïve occurrence variant, or for the full body (aggregate
/// recomputes). Built by ExecPlanner (engine/planner.h) from online
/// relation statistics; executing `steps` enumerates exactly the bindings
/// of the baseline order.
struct VariantPlan {
  std::vector<Step> steps;           // empty = planning declined (use baseline)
  std::vector<size_t> source_index;  // baseline step index per position
  std::vector<double> est_rows;      // estimated matches per position (<0 = Δ)
  /// Where each position's estimate came from (kSize for filter/Δ/lookup
  /// positions whose cost is fixed, kDict/kStat for scans) and the distinct
  /// count behind it (-1 when no distinct statistic was consulted). Both
  /// parallel to est_rows; surfaced by SB_EXPLAIN.
  std::vector<EstimateSource> est_src;
  std::vector<int64_t> est_distinct;
  /// (pred, mask) pairs the plan probes — the index warm list.
  std::vector<std::pair<datalog::PredId, uint32_t>> probe_masks;
  /// Body relation sizes at plan time — the replan drift reference.
  std::vector<std::pair<datalog::PredId, size_t>> stat_rows;
  uint64_t builds = 0;  // times this slot was (re)planned
};

/// Per-rule plan cache, attached to CompiledRule: slot 0 holds the
/// full-body plan, slot occ+1 the occurrence-`occ` variant. Sized once
/// (plans hand out interior pointers) and mutated only by the planner from
/// the fixpoint's single-threaded merge phase.
struct RulePlanCache {
  std::vector<std::optional<VariantPlan>> variants;
};

struct CompiledHead {
  datalog::PredId pred = datalog::kInvalidPred;
  std::vector<ArgPat> args;  // kBind entries are existential slots
};

struct CompiledAgg {
  datalog::AggFunc func;
  int input_slot = -1;  // -1 for count
  // Head (single, functional): key arg patterns; value is the agg result.
  datalog::PredId head_pred = datalog::kInvalidPred;
  std::vector<ArgPat> key_args;
  bool lattice = false;  // recursive min/max: monotone improvement semantics
};

struct CompiledRule {
  datalog::Rule source;
  int id = 0;
  int stratum = 0;
  size_t num_slots = 0;
  std::vector<std::string> slot_names;
  std::vector<Step> steps;
  std::vector<CompiledHead> heads;            // empty for aggregate rules
  std::optional<CompiledAgg> agg;
  int num_scan_occurrences = 0;
  std::vector<datalog::PredId> scan_preds;    // indexed by occurrence
  // Head existentials.
  std::vector<int> existential_slots;
  std::vector<datalog::PredId> existential_types;
  std::vector<int> memo_key_slots;  // bound slots used anywhere in heads
  /// Body enumeration is free of side effects (no head existentials, no
  /// thread-unsafe builtins), so the parallel fixpoint may run it on
  /// worker threads; other rules are pinned to the sequential merge phase.
  bool parallel_safe = true;
  /// Cost-based plans per semi-naïve variant (see RulePlanCache). Shared
  /// across copies of the compiled rule; null only for value-initialized
  /// placeholders.
  std::shared_ptr<RulePlanCache> plan_cache = std::make_shared<RulePlanCache>();
};

struct CompiledConstraint {
  datalog::ConstraintDecl source;
  int id = 0;
  size_t num_slots = 0;
  std::vector<std::string> slot_names;
  std::vector<Step> lhs_steps;
  std::vector<Step> rhs_steps;
  int num_scan_occurrences = 0;               // lhs only
  std::vector<datalog::PredId> scan_preds;    // lhs scans by occurrence
};

/// Compiles analyzed rules/constraints against a catalog + builtin registry.
class RuleCompiler {
 public:
  RuleCompiler(const datalog::Catalog& catalog,
               const BuiltinRegistry& builtins)
      : catalog_(catalog), builtins_(builtins) {}

  Result<CompiledRule> CompileRule(const datalog::Rule& rule, int id) const;
  Result<CompiledConstraint> CompileConstraint(
      const datalog::ConstraintDecl& c, int id) const;

 private:
  const datalog::Catalog& catalog_;
  const BuiltinRegistry& builtins_;
};

using TupleSet = std::unordered_set<Tuple, TupleHash>;

/// Per-occurrence relation view for exact (counting) delta enumeration:
///  - `only`: the occurrence reads exactly these tuples (a delta), or the
///    [only_begin, only_end) slice of them — the parallel fixpoint chunks
///    a large delta across workers without copying it;
///  - `exclude`: tuples skipped when reading the relation (deltas that a
///    variant with a later occurrence will cover, or queued inserts whose
///    derivations have not been counted yet);
///  - `extra`: tuples appended to the relation's contents (tuples already
///    erased, restored so retraction variants see the pre-delete state).
struct OccView {
  const std::vector<Tuple>* only = nullptr;
  size_t only_begin = 0;
  size_t only_end = SIZE_MAX;  // clamped to only->size()
  /// When set, the view reads `only` through this indirection: row k of the
  /// slice is (*only)[(*only_index)[k]] and [only_begin, only_end) ranges
  /// over only_index. The parallel fixpoint stages shard-aligned delta
  /// chunks as index lists into the round's one delta vector — segment
  /// slices — instead of materializing per-shard tuple copies.
  const std::vector<uint32_t>* only_index = nullptr;
  const TupleSet* exclude = nullptr;
  const std::vector<Tuple>* extra = nullptr;
  bool active() const { return only || exclude || extra; }
};

/// Delta override: scan occurrence `occurrence` reads `tuples` instead of
/// the full relation (semi-naïve variants, constraint delta checks).
/// `views`, when set, gives a per-occurrence view and wins over the
/// single-occurrence shorthand.
struct DeltaOverride {
  int occurrence = -1;
  const std::vector<Tuple>* tuples = nullptr;
  const std::vector<OccView>* views = nullptr;
};

/// Executes compiled step lists.
class Executor {
 public:
  /// `simd` picks the instruction set for the columnar filter kernels
  /// (engine/kernels.h); the default resolves the CPU's best level. Every
  /// mode enumerates the identical bindings in the identical order.
  Executor(EvalContext* ctx, RelationStore* store,
           SimdMode simd = ResolveSimdMode(2))
      : ctx_(*ctx), store_(*store), simd_(simd) {}

  /// Enumerate all bindings of `steps`; invoke `on_match` for each.
  /// `on_match` returning an error aborts enumeration.
  Status Run(const std::vector<Step>& steps, Env* env,
             const DeltaOverride* delta,
             const std::function<Status(Env&)>& on_match);

  /// Existence check: do `steps` admit at least one binding, starting from
  /// the (partially bound) environment? Used for constraint rhs.
  Result<bool> Exists(const std::vector<Step>& steps, Env* env);

  /// Compare two values under `op`, coercing entity-vs-string comparisons
  /// through entity labels.
  Result<bool> Compare(const datalog::Value& a, datalog::CmpOp op,
                       const datalog::Value& b);

  Result<datalog::Value> Eval(const CExpr& e, const Env& env);

 private:
  Status RunFrom(const std::vector<Step>& steps, size_t idx, Env& env,
                 const DeltaOverride* delta,
                 const std::function<Status(Env&)>& on_match);

  EvalContext& ctx_;
  RelationStore& store_;
  /// Resolved kernel instruction set for columnar scans (never affects
  /// enumeration order, only throughput).
  SimdMode simd_ = SimdMode::kScalar;
  /// Base of this Run's window into the thread-local frame stack (see
  /// EvalFrame in eval.cc): depth `idx` uses frame `frame_base_ + idx`.
  /// Nested Run/Exists calls on the same thread — the constraint checker
  /// probes its rhs from inside the lhs enumeration — stack their windows
  /// above the caller's, so scratch at equal depths never aliases.
  size_t frame_base_ = 0;
};

/// Process-wide count of evaluation frames ever allocated across all
/// thread-local frame pools. Flat once the pools reach the workload's
/// maximum body depth — EngineStats snapshots it so tests and benches can
/// pin the no-allocation-in-steady-state property of the probe paths.
uint64_t EvalFrameAllocs();

// (Stratification and the rule dependency graph live in engine/rule_graph.)

}  // namespace secureblox::engine

#endif  // SECUREBLOX_ENGINE_EVAL_H_
