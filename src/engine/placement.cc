#include "engine/placement.h"

#include <string>

#include "engine/workspace.h"

namespace secureblox::engine {

using datalog::Atom;
using datalog::Catalog;
using datalog::Literal;
using datalog::PredId;
using datalog::Rule;
using datalog::TermKind;
using datalog::TermPtr;

namespace {

/// Rendering of an anchor term for comparison and diagnostics: variables
/// compare by name, constants by value. Returns nullopt for terms that
/// cannot serve as a shard anchor (arithmetic, varargs).
std::optional<std::string> AnchorKey(const TermPtr& term) {
  if (term == nullptr) return std::nullopt;
  switch (term->kind) {
    case TermKind::kVar:
      return "v:" + term->name;
    case TermKind::kConst:
      return "c:" + term->constant.ToString();
    default:
      return std::nullopt;
  }
}

Status RuleError(const Rule& rule, const std::string& what) {
  return Status::InvalidArgument("placement: " + what + " in rule " +
                                 rule.ToString());
}

}  // namespace

Status ValidatePlacement(
    const Workspace& ws,
    const std::unordered_set<datalog::PredId>& placed) {
  const Catalog& catalog = ws.catalog();
  for (PredId p : placed) {
    const datalog::PredicateDecl& decl = catalog.decl(p);
    if (decl.functional) {
      return Status::InvalidArgument(
          "placement: functional predicate '" + decl.name +
          "' cannot be placed (shard anchoring assumes first-column keys)");
    }
    if (decl.arity() == 0) {
      return Status::InvalidArgument("placement: nullary predicate '" +
                                     decl.name + "' cannot be placed");
    }
    const datalog::PredicateDecl& key_type = catalog.decl(decl.arg_types[0]);
    if (!key_type.is_primitive) {
      return Status::InvalidArgument(
          "placement: predicate '" + decl.name + "' shard-key column has "
          "entity type '" + key_type.name + "'; entity intern ids are "
          "node-local, so nodes would disagree on shard routing — use a "
          "primitive-typed (int/string/bool/blob) key column");
    }
    const Relation* rel = ws.GetRelationIfExists(p);
    if (rel != nullptr && !rel->empty()) {
      return Status::InvalidArgument(
          "placement: predicate '" + decl.name +
          "' must start empty — placed data arrives through transactions, "
          "not program facts");
    }
  }

  const std::vector<Rule>& rules = ws.installed_rules();
  const RuleGraph& graph = ws.rule_graph();
  for (size_t i = 0; i < rules.size(); ++i) {
    const Rule& rule = rules[i];
    auto is_placed_atom = [&](const Atom& a) {
      auto id = catalog.Lookup(a.pred.name);
      return id.ok() && placed.count(id.value()) > 0;
    };

    bool head_placed = false;
    for (const Atom& h : rule.heads) head_placed |= is_placed_atom(h);

    std::optional<std::string> body_anchor;
    bool body_placed = false;
    for (const Literal& lit : rule.body) {
      if (lit.kind != Literal::Kind::kAtom) continue;
      if (!is_placed_atom(lit.atom)) continue;
      if (lit.atom.negated) {
        return RuleError(rule,
                         "placed predicate '" + lit.atom.pred.name +
                             "' under negation (a node only sees its owned "
                             "shards, so negation is unsound)");
      }
      body_placed = true;
      auto anchor = AnchorKey(lit.atom.args.empty() ? nullptr
                                                    : lit.atom.args[0]);
      if (!anchor.has_value()) {
        return RuleError(rule, "placed atom '" + lit.atom.pred.name +
                                   "' needs a variable or constant in its "
                                   "shard-key (first) position");
      }
      if (!body_anchor.has_value()) {
        body_anchor = anchor;
      } else if (*body_anchor != *anchor) {
        return RuleError(rule,
                         "placed body atoms disagree on the shard anchor (" +
                             *body_anchor + " vs " + *anchor +
                             "); co-shardable rules join placed atoms on "
                             "one shared first-column term");
      }
    }

    if (!head_placed && !body_placed) continue;  // rule outside placement

    if (rule.agg.has_value()) {
      return RuleError(rule,
                       "aggregation over placed predicates (aggregates need "
                       "the whole relation, a node owns a subset)");
    }
    if (head_placed && !body_placed) {
      return RuleError(rule,
                       "placed head without a placed body anchor (the rule "
                       "would fire at every replica, multiplying supports)");
    }
    if (!head_placed && body_placed) {
      return RuleError(rule,
                       "non-placed head derived from placed body (replicas "
                       "of the head predicate would diverge across nodes)");
    }

    const bool recursive =
        graph.groups()[graph.group_of_rule(i)].recursive;
    if (recursive) {
      for (const Atom& h : rule.heads) {
        if (!is_placed_atom(h)) continue;
        auto head_anchor =
            AnchorKey(h.args.empty() ? nullptr : h.args[0]);
        if (!head_anchor.has_value() || *head_anchor != *body_anchor) {
          return RuleError(
              rule,
              "recursive rule re-keys its placed head '" + h.pred.name +
                  "' off the body anchor; recursion must stay shard-local "
                  "(route through a non-recursive re-keying rule instead)");
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace secureblox::engine
