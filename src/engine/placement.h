// Partitioned shard placement: the engine half of the scale-out seam.
//
// PR 5 hash-sharded every relation *within* a node; placement assigns each
// shard index to exactly one owning node, so a cluster holds one logical
// database partitioned by shard instead of a replica per node. The
// workspace consults a ShardPlacement during transactions: a base insert,
// base delete, rule-head derivation, or support retraction whose target
// shard is owned elsewhere is *staged* as a RemoteDelta on the commit
// instead of applied locally; the distribution layer ships staged deltas
// to their owners (per-shard sealed batches) where they apply through the
// same transaction machinery. Handoff snapshots (node join/leave) travel
// the same way as kHandoff deltas carrying support counts.
//
// Supported program class ("co-shardable", the placement analogue of
// declarative networking's link restriction): every rule that touches a
// placed predicate must anchor all its placed body atoms on one shared
// shard-key term, so each rule instantiation exists wholly within one
// shard — and therefore fires at exactly one owner. Non-recursive rules
// may re-key their heads (the derived tuple's shard differs from the
// body anchor's; the head routes to its owner as a support-carrying
// delta); recursive rules must be shard-local. ValidatePlacement enforces
// the class statically, which is what makes the distributed fixpoint
// byte-identical to the replicated baseline: the union of owned shards
// across the cluster equals the single-workspace fixpoint — same tuples,
// same support counts, same content-addressed labels — at any node count.
#ifndef SECUREBLOX_ENGINE_PLACEMENT_H_
#define SECUREBLOX_ENGINE_PLACEMENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "datalog/catalog.h"
#include "engine/tuple.h"

namespace secureblox::engine {

class Workspace;

/// One staged mutation addressed to a remote shard owner, produced by a
/// committing transaction (TxCommit::remote). The tuple is normalized
/// (entities interned) so the wire layer can serialize it directly.
struct RemoteDelta {
  enum class Kind : uint8_t {
    kBaseInsert,   // base fact asserted; owner inserts uncounted
    kBaseDelete,   // base assertion withdrawn; owner seeds a delete delta
    kSupportAdd,   // one rule instantiation derived the tuple remotely
    kSupportDrop,  // one remote instantiation was destroyed
    kHandoff,      // shard snapshot row (join/leave transfer)
  };
  Kind kind = Kind::kBaseInsert;
  datalog::PredId pred = datalog::kInvalidPred;
  Tuple tuple;
  /// Shard index of `tuple` within `pred`'s relation (routing key).
  size_t shard = 0;
  /// kHandoff: derivation-support count travelling with the row.
  uint32_t support = 0;
  /// kHandoff: the row is also asserted as a base fact.
  bool is_base = false;
};

/// One decoded incoming placement mutation, handed by the distribution
/// layer to Workspace::Apply alongside ordinary fact updates. Values in
/// entity positions may be interned entities or string labels.
struct RemoteOp {
  RemoteDelta::Kind kind = RemoteDelta::Kind::kBaseInsert;
  std::string pred;
  std::vector<datalog::Value> values;
  uint32_t support = 0;
  bool is_base = false;
};

/// Placement map threaded through FixpointOptions. `owner_of` must be
/// deterministic for the lifetime of a transaction (the distribution
/// layer only moves ownership between transactions, bumping `epoch`).
struct ShardPlacement {
  /// This node's index in the cluster.
  uint32_t local_node = 0;
  /// Shard-map epoch, bumped on every membership change.
  uint64_t epoch = 0;
  /// Predicates under placement. Everything else (infrastructure facts,
  /// policy state, export queues) stays node-local as before.
  std::unordered_set<datalog::PredId> placed;
  /// Owning node of `shard` (shard indexes are pred-agnostic: shard s of
  /// every placed relation lives on the same owner, so one sealed payload
  /// routes atomically).
  std::function<uint32_t(size_t shard)> owner_of;

  bool IsPlaced(datalog::PredId pred) const { return placed.count(pred) > 0; }
};

/// Static validation of the co-shardable program class for `placed`
/// predicates against the workspace's installed rules:
///   - placed predicates must not be functional (shard key = first column),
///     must not appear negated or in aggregate rules, and must start empty
///     (placed data arrives through transactions, never program facts);
///   - every rule with a placed head needs at least one positive placed
///     body atom, and all placed body atoms must share one first-argument
///     anchor term (variable or constant);
///   - rules in recursive groups must also anchor their placed heads on
///     the same term (shard-local recursion); only non-recursive rules may
///     re-key.
Status ValidatePlacement(const Workspace& ws,
                         const std::unordered_set<datalog::PredId>& placed);

}  // namespace secureblox::engine

#endif  // SECUREBLOX_ENGINE_PLACEMENT_H_
