// Authenticated/encrypted parallel hash join (paper §7.2).
//
// Tables R and S are initially partitioned by their first (key) attribute;
// joining on the second attribute requires rehashing: each node hashes the
// join attribute, `says` the tuple to the principal whose hash range owns
// it, joins co-located tuples, and says results back to the initiator.
#ifndef SECUREBLOX_APPS_HASHJOIN_H_
#define SECUREBLOX_APPS_HASHJOIN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "dist/cluster.h"
#include "policy/says_policy.h"

namespace secureblox::apps {

/// The parallel hash join program.
std::string HashJoinSource();

struct HashJoinConfig {
  size_t num_nodes = 6;
  policy::AuthScheme auth = policy::AuthScheme::kNone;
  policy::EncScheme enc = policy::EncScheme::kNone;
  /// Paper workload: ~900 and ~800 tuples over 72 distinct join values.
  size_t tuples_r = 900;
  size_t tuples_s = 800;
  size_t join_values = 72;
  uint64_t seed = 1;
  size_t rsa_bits = 1024;
  double compute_scale = 1.0;
  /// See PathVectorConfig::per_fact_policy (paper footnote 2).
  bool per_fact_policy = false;
  /// §5.2 delivery granularity (see SimCluster::Config).
  size_t max_batch_tuples = 0;
  double max_batch_delay_s = 0;
};

struct HashJoinResult {
  dist::SimCluster::Metrics metrics;
  /// Join rows collected at the initiator (node 0).
  size_t results_at_initiator = 0;
  /// Expected |R ⋈ S| from a reference nested-loop join.
  size_t expected_results = 0;
  /// Completion times (sim seconds) of accepted transactions at the
  /// initiator — the Figure 10/11 CDF.
  std::vector<double> initiator_completion_times_s;
};

Result<HashJoinResult> RunHashJoin(const HashJoinConfig& config);

}  // namespace secureblox::apps

#endif  // SECUREBLOX_APPS_HASHJOIN_H_
