#include "apps/hashjoin.h"

#include <algorithm>
#include <map>

#include "common/random.h"
#include "dist/runtime.h"

namespace secureblox::apps {

using datalog::Value;
using engine::FactUpdate;

std::string HashJoinSource() {
  return R"(
// --- parallel hash join (paper §7.2) ---
tbl_r(K, J) -> int(K), int(J).
tbl_s(K, J) -> int(K), int(J).
joinresult(K1, J, K2) -> int(K1), int(J), int(K2).

// Hash-range ownership: principal U stores join values whose SHA-1 bucket
// falls in [minhash, maxhash) — the paper's prin_minhash/prin_maxhash.
prin_minhash[U] = H -> principal(U), int(H).
prin_maxhash[U] = H -> principal(U), int(H).
initiator[] = U -> principal(U).

// Rehash both tables on the join attribute: say each tuple to the owner of
// its hash bucket.
says[`tbl_r](S, U, K, J) <-
    tbl_r(K, J), sha1_bucket(J, 1000000, H),
    prin_minhash[U] = MN, H >= MN, prin_maxhash[U] = MX, H < MX,
    self[] = S, U != S.
says[`tbl_s](S, U, K, J) <-
    tbl_s(K, J), sha1_bucket(J, 1000000, H),
    prin_minhash[U] = MN, H >= MN, prin_maxhash[U] = MX, H < MX,
    self[] = S, U != S.

// Join co-located tuples: only join values whose bucket this node owns
// (original tuples with remote buckets are joined by their owners).
joinresult(K1, J, K2) <-
    tbl_r(K1, J), tbl_s(K2, J), sha1_bucket(J, 1000000, H),
    prin_minhash[U] = MN, H >= MN, prin_maxhash[U] = MX, H < MX,
    self[] = U.

// Ship results to the initiator of the join.
says[`joinresult](S, U, K1, J, K2) <-
    joinresult(K1, J, K2), initiator[] = U, self[] = S, U != S.

exportable(`tbl_r).
exportable(`tbl_s).
exportable(`joinresult).
)";
}

Result<HashJoinResult> RunHashJoin(const HashJoinConfig& config) {
  policy::SaysPolicyOptions popts;
  popts.accept = policy::AcceptMode::kBenign;
  dist::SimCluster::Config cfg;
  if (config.per_fact_policy) {
    popts.auth = config.auth;
    popts.enc = config.enc;
  } else {
    cfg.batch_security.auth = config.auth;
    cfg.batch_security.enc = config.enc;
  }
  cfg.num_nodes = config.num_nodes;
  cfg.sources = {policy::PreludeSource(), HashJoinSource(),
                 policy::SaysPolicySource(popts)};
  cfg.credentials.rsa_bits = config.rsa_bits;
  cfg.credentials.seed = "hashjoin";
  cfg.compute_scale = config.compute_scale;
  cfg.net.seed = config.seed;
  cfg.max_batch_tuples = config.max_batch_tuples;
  cfg.max_batch_delay_s = config.max_batch_delay_s;

  SB_ASSIGN_OR_RETURN(std::unique_ptr<dist::SimCluster> cluster,
                      dist::SimCluster::Create(std::move(cfg)));

  // Generate the workload: keys unique per table, join attribute drawn
  // uniformly from `join_values` distinct values (randomized per trial).
  Xoshiro256 rng(config.seed);
  std::vector<int64_t> join_domain;
  for (size_t i = 0; i < config.join_values; ++i) {
    join_domain.push_back(static_cast<int64_t>(rng.Next() % 1000000007));
  }
  std::vector<std::pair<int64_t, int64_t>> table_r, table_s;
  for (size_t i = 0; i < config.tuples_r; ++i) {
    table_r.push_back({static_cast<int64_t>(i),
                       join_domain[i % join_domain.size()]});
  }
  for (size_t i = 0; i < config.tuples_s; ++i) {
    table_s.push_back({static_cast<int64_t>(1000000 + i),
                       join_domain[rng.Uniform(join_domain.size())]});
  }

  // Reference result size (nested-loop join on the join attribute).
  HashJoinResult result;
  {
    std::map<int64_t, size_t> r_counts;
    for (const auto& [k, j] : table_r) r_counts[j]++;
    for (const auto& [k, j] : table_s) {
      auto it = r_counts.find(j);
      if (it != r_counts.end()) result.expected_results += it->second;
    }
  }

  // Initial partitioning on the *first* attribute (paper: tuples initially
  // hashed on their first key attribute).
  std::vector<std::vector<FactUpdate>> initial(config.num_nodes);
  for (const auto& [k, j] : table_r) {
    size_t home = static_cast<size_t>(k) % config.num_nodes;
    initial[home].push_back({"tbl_r", {Value::Int(k), Value::Int(j)}});
  }
  for (const auto& [k, j] : table_s) {
    size_t home = static_cast<size_t>(k) % config.num_nodes;
    initial[home].push_back({"tbl_s", {Value::Int(k), Value::Int(j)}});
  }

  // Hash-range and initiator facts on every node.
  const int64_t kHashSpace = 1000000;
  for (size_t i = 0; i < config.num_nodes; ++i) {
    auto& facts = initial[i];
    facts.push_back({"initiator", {Value::Str("p0")}});
    for (size_t u = 0; u < config.num_nodes; ++u) {
      std::string principal = "p" + std::to_string(u);
      int64_t lo = static_cast<int64_t>(u) * kHashSpace /
                   static_cast<int64_t>(config.num_nodes);
      int64_t hi = static_cast<int64_t>(u + 1) * kHashSpace /
                   static_cast<int64_t>(config.num_nodes);
      facts.push_back({"prin_minhash", {Value::Str(principal), Value::Int(lo)}});
      facts.push_back({"prin_maxhash", {Value::Str(principal), Value::Int(hi)}});
    }
    cluster->ScheduleInsert(static_cast<net::NodeIndex>(i),
                            std::move(facts));
  }

  SB_ASSIGN_OR_RETURN(result.metrics, cluster->Run());

  // Results at the initiator: locally joined plus received joinresult rows.
  SB_ASSIGN_OR_RETURN(auto rows, cluster->node(0).workspace().Query(
                                     "joinresult"));
  result.results_at_initiator = rows.size();
  for (const auto& tx : result.metrics.transactions) {
    if (tx.node == 0 && tx.accepted) {
      result.initiator_completion_times_s.push_back(tx.end_s);
    }
  }
  return result;
}

}  // namespace secureblox::apps
