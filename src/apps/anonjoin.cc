#include "apps/anonjoin.h"

#include <set>

#include "common/random.h"
#include "crypto/hmac_drbg.h"
#include "dist/runtime.h"
#include "policy/says_policy.h"

namespace secureblox::apps {

using datalog::Value;
using engine::FactUpdate;

std::string AnonJoinSource() {
  return R"(
// --- anonymous join (paper §7.3) ---
interests(X) -> int(X).
publicdata(X, Y) -> int(X), int(Y).
req_publicdata(H) -> int(H).
publicdata_pair(X, Y) -> int(X), int(Y).
table_owner[] = U -> principal(U).
result(X, Y) -> int(X), int(Y).

// Initiator: anonymously request rows by the hash of the join key, so the
// owner learns neither the initiator nor the raw keys of non-matches.
anon_says[`req_publicdata](S, U, HX) <-
    interests(X), sha1_bucket(X, 1000000, HX),
    table_owner[] = U, self[] = S.

// Owner: relay matching rows back along the circuit they arrived on.
anon_out[`publicdata_pair](C, X, Y) <-
    publicdata(X, Y), anon_in[`req_publicdata](C, HX),
    sha1_bucket(X, 1000000, HX).

// Initiator: collect replies.
result(X, Y) <- anon_reply[`publicdata_pair](C, X, Y).

anon_exportable(`req_publicdata).
anon_exportable(`publicdata_pair).
)";
}

Status BuildCircuit(dist::SimCluster* cluster,
                    const std::vector<net::NodeIndex>& path,
                    const std::string& destination_principal,
                    uint64_t key_seed) {
  if (path.size() < 2) {
    return Status::InvalidArgument("circuit needs at least two nodes");
  }
  // Hop keys k1..k(n-1): key i protects the link layer peeled by path[i].
  crypto::HmacDrbg drbg(
      BytesFromString("circuit-keys-" + std::to_string(key_seed)));
  std::vector<Bytes> hop_keys;  // for path[1..]
  for (size_t i = 1; i < path.size(); ++i) hop_keys.push_back(drbg.Generate(16));

  // Link-local ids: id(i) names the segment path[i] -> path[i+1].
  SplitMix64 ids(key_seed ^ 0x51ECu);
  std::vector<int64_t> link_id;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    link_id.push_back(static_cast<int64_t>(ids.Next() & 0x7FFFFFFF));
  }

  for (size_t i = 0; i < path.size(); ++i) {
    dist::NodeRuntime& node = cluster->node(path[i]);
    std::string label = "circ" + std::to_string(key_seed) + "@" +
                        std::to_string(path[i]);
    std::vector<FactUpdate> facts;
    facts.push_back({"circuit", {Value::Str(label)}});
    if (i == 0) {
      // Initiator: knows the whole key ladder.
      node.security_state().circuits.layer_keys_by_label[label] = hop_keys;
      facts.push_back({"anon_path",
                       {Value::Str(destination_principal), Value::Str(label)}});
      facts.push_back({"anon_path_initiator", {Value::Str(label)}});
      facts.push_back(
          {"anon_path_forward_id", {Value::Str(label), Value::Int(link_id[0])}});
      facts.push_back(
          {"anon_path_nexthop",
           {Value::Str(label), Value::Str(dist::NodeLabel(path[1]))}});
    } else {
      node.security_state().circuits.layer_keys_by_label[label] = {
          hop_keys[i - 1]};
      facts.push_back({"anon_path_backward_id",
                       {Value::Str(label), Value::Int(link_id[i - 1])}});
      facts.push_back(
          {"anon_path_prevhop",
           {Value::Str(label), Value::Str(dist::NodeLabel(path[i - 1]))}});
      if (i + 1 < path.size()) {
        facts.push_back({"anon_path_forward_id",
                         {Value::Str(label), Value::Int(link_id[i])}});
        facts.push_back(
            {"anon_path_nexthop",
             {Value::Str(label), Value::Str(dist::NodeLabel(path[i + 1]))}});
      } else {
        facts.push_back({"anon_path_endpoint", {Value::Str(label)}});
      }
    }
    auto commit = node.workspace().Apply(facts);
    if (!commit.ok()) return commit.status();
  }
  return Status::OK();
}

Result<AnonJoinResult> RunAnonJoin(const AnonJoinConfig& config) {
  if (config.num_nodes < 3) {
    return Status::InvalidArgument("anonymous join needs >= 3 nodes");
  }
  dist::SimCluster::Config cfg;
  cfg.num_nodes = config.num_nodes;
  cfg.sources = {policy::PreludeSource(), policy::AnonPreludeSource(),
                 AnonJoinSource(), policy::AnonSaysPolicySource()};
  cfg.credentials.rsa_bits = config.rsa_bits;
  cfg.credentials.seed = "anonjoin";
  cfg.net.seed = config.seed;
  cfg.max_batch_tuples = config.max_batch_tuples;
  cfg.max_batch_delay_s = config.max_batch_delay_s;

  SB_ASSIGN_OR_RETURN(std::unique_ptr<dist::SimCluster> cluster,
                      dist::SimCluster::Create(std::move(cfg)));

  // Circuit from node 0 (initiator) through every relay to the last node
  // (the data owner).
  const net::NodeIndex owner =
      static_cast<net::NodeIndex>(config.num_nodes - 1);
  std::vector<net::NodeIndex> path;
  for (size_t i = 0; i < config.num_nodes; ++i) {
    path.push_back(static_cast<net::NodeIndex>(i));
  }
  const std::string owner_principal = "p" + std::to_string(owner);
  SB_RETURN_IF_ERROR(
      BuildCircuit(cluster.get(), path, owner_principal, config.seed));

  // Workload: interests at the initiator, publicdata at the owner.
  Xoshiro256 rng(config.seed);
  std::set<int64_t> interest_keys;
  while (interest_keys.size() < config.interests) {
    interest_keys.insert(
        static_cast<int64_t>(rng.Uniform(config.value_domain)));
  }
  std::vector<FactUpdate> init0, init_owner;
  init0.push_back({"table_owner", {Value::Str(owner_principal)}});
  for (int64_t k : interest_keys) {
    init0.push_back({"interests", {Value::Int(k)}});
  }
  AnonJoinResult result;
  std::vector<std::pair<int64_t, int64_t>> rows;
  for (size_t i = 0; i < config.publicdata; ++i) {
    int64_t x = static_cast<int64_t>(rng.Uniform(config.value_domain));
    int64_t y = static_cast<int64_t>(i);
    rows.push_back({x, y});
    init_owner.push_back({"publicdata", {Value::Int(x), Value::Int(y)}});
    if (interest_keys.count(x)) ++result.expected_results;
  }
  cluster->ScheduleInsert(0, std::move(init0));
  cluster->ScheduleInsert(owner, std::move(init_owner));

  SB_ASSIGN_OR_RETURN(result.metrics, cluster->Run());

  SB_ASSIGN_OR_RETURN(auto got, cluster->node(0).workspace().Query("result"));
  result.results_at_initiator = got.size();

  // Anonymity check: the owner's workspace must not contain any entity
  // whose label is the initiator's principal in circuit/anon relations
  // beyond the public principal directory (which everyone has).
  // Specifically: the owner learns requests only as anon_in rows keyed by
  // circuit, never as says facts from p0.
  auto& owner_ws = cluster->node(owner).workspace();
  for (const char* pred : {"anon_in$req_publicdata"}) {
    auto q = owner_ws.Query(pred);
    if (q.ok()) {
      for (const auto& row : q.value()) {
        for (const auto& v : row) {
          if (v.is_entity()) {
            auto label = owner_ws.catalog().EntityLabel(v);
            if (label.ok() && label.value() == "p0") {
              result.initiator_hidden_from_owner = false;
            }
          }
        }
      }
    }
  }
  return result;
}

}  // namespace secureblox::apps
