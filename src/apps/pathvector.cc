#include "apps/pathvector.h"

#include <algorithm>
#include <deque>
#include <set>

#include "common/random.h"
#include "dist/runtime.h"

namespace secureblox::apps {

using datalog::Value;
using engine::FactUpdate;

std::string PathVectorSource() {
  return R"(
// --- path-vector protocol (paper §7.1) ---
link(X, Y) -> principal(X), principal(Y).
pathvar(P) -> .
path(P, Src, Dst, C) -> pathvar(P), principal(Src), principal(Dst), int(C).
pathlink(P, H1, H2) -> pathvar(P), principal(H1), principal(H2).
bestcost[Src, Dst] = C -> principal(Src), principal(Dst), int(C).
extend[P, U] = P2 -> pathvar(P), principal(U), pathvar(P2).

// Base case: a link is a path of length one.
pathvar(P), path(P, S, U, 1), pathlink(P, S, U) <-
    link(S, U), self[] = S.

// The cost of the best path per destination (min-cost lattice recursion).
bestcost[S, D] = C <- agg<< C = min(Cx) >> path(Q, S, D, Cx).

// Extend a best path to a neighbour that is not the destination and does
// not already appear on the path (loop avoidance), creating a fresh path
// entity for the extension.
extend[P, U] = P2, pathvar(P2) <-
    path(P, S, D, C), bestcost[S, D] = C, link(S, U), self[] = S,
    U != D, !pathlink(P, U, _).

// Advertise the extended path — cost, then its full composition — to the
// neighbour. The says construct handles authentication/encryption per the
// configured policy.
says[`path](S, U, P2, U, D, C + 1) <-
    extend[P, U] = P2, path(P, S, D, C), bestcost[S, D] = C, self[] = S.
says[`pathlink](S, U, P2, H1, H2) <-
    extend[P, U] = P2, pathlink(P, H1, H2), self[] = S.
says[`pathlink](S, U, P2, U, S) <-
    extend[P, U] = P2, self[] = S.

exportable(`path).
exportable(`pathlink).
)";
}

std::vector<Edge> RandomConnectedGraph(size_t n, double avg_degree,
                                       uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  std::set<std::pair<size_t, size_t>> seen;
  auto add = [&](size_t a, size_t b) {
    if (a == b) return false;
    auto key = std::minmax(a, b);
    if (!seen.insert({key.first, key.second}).second) return false;
    edges.push_back({a, b});
    return true;
  };

  // Random spanning tree (connectivity).
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  for (size_t i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.Uniform(i)]);
  }
  for (size_t i = 1; i < n; ++i) {
    add(order[i], order[rng.Uniform(i)]);
  }
  // Extra edges to reach the target average degree (2E/n).
  size_t target_edges = static_cast<size_t>(avg_degree * n / 2.0);
  size_t guard = 0;
  while (edges.size() < target_edges && ++guard < 100 * n) {
    add(rng.Uniform(n), rng.Uniform(n));
  }
  return edges;
}

std::vector<std::vector<int64_t>> ReferenceHopCounts(
    size_t n, const std::vector<Edge>& edges) {
  std::vector<std::vector<size_t>> adj(n);
  for (const Edge& e : edges) {
    adj[e.a].push_back(e.b);
    adj[e.b].push_back(e.a);
  }
  std::vector<std::vector<int64_t>> dist(n, std::vector<int64_t>(n, -1));
  for (size_t s = 0; s < n; ++s) {
    std::deque<size_t> queue = {s};
    dist[s][s] = 0;
    while (!queue.empty()) {
      size_t u = queue.front();
      queue.pop_front();
      for (size_t v : adj[u]) {
        if (dist[s][v] < 0) {
          dist[s][v] = dist[s][u] + 1;
          queue.push_back(v);
        }
      }
    }
  }
  return dist;
}

Result<PathVectorResult> RunPathVector(const PathVectorConfig& config) {
  policy::SaysPolicyOptions popts;
  popts.accept = policy::AcceptMode::kBenign;
  dist::SimCluster::Config cfg;
  if (config.per_fact_policy) {
    // Ablation mode: signatures/encryption per individual fact, inside the
    // says policy itself; messages travel in plain envelopes.
    popts.auth = config.auth;
    popts.enc = config.enc;
  } else {
    // Paper configuration (footnote 2): one signature/MAC (and optional
    // AES pass) per message batch, applied by the runtime.
    cfg.batch_security.auth = config.auth;
    cfg.batch_security.enc = config.enc;
  }
  cfg.num_nodes = config.num_nodes;
  cfg.sources = {policy::PreludeSource(), PathVectorSource(),
                 policy::SaysPolicySource(popts)};
  cfg.credentials.rsa_bits = config.rsa_bits;
  cfg.credentials.seed = "pathvector";
  cfg.compute_scale = config.compute_scale;
  cfg.net.seed = config.graph_seed;
  cfg.max_batch_tuples = config.max_batch_tuples;
  cfg.max_batch_delay_s = config.max_batch_delay_s;

  SB_ASSIGN_OR_RETURN(std::unique_ptr<dist::SimCluster> cluster,
                      dist::SimCluster::Create(std::move(cfg)));

  std::vector<Edge> edges = RandomConnectedGraph(
      config.num_nodes, config.avg_degree, config.graph_seed);
  // Paper: "We distribute initial links to all nodes simultaneously."
  std::vector<std::vector<FactUpdate>> initial(config.num_nodes);
  auto principal = [](size_t i) { return "p" + std::to_string(i); };
  for (const Edge& e : edges) {
    initial[e.a].push_back(
        {"link", {Value::Str(principal(e.a)), Value::Str(principal(e.b))}});
    initial[e.b].push_back(
        {"link", {Value::Str(principal(e.b)), Value::Str(principal(e.a))}});
  }
  for (size_t i = 0; i < config.num_nodes; ++i) {
    if (!initial[i].empty()) {
      cluster->ScheduleInsert(static_cast<net::NodeIndex>(i),
                              std::move(initial[i]));
    }
  }

  PathVectorResult result;
  SB_ASSIGN_OR_RETURN(result.metrics, cluster->Run());

  // Extract converged routing tables.
  result.best_costs.resize(config.num_nodes);
  for (size_t i = 0; i < config.num_nodes; ++i) {
    auto& ws = cluster->node(static_cast<net::NodeIndex>(i)).workspace();
    SB_ASSIGN_OR_RETURN(auto rows, ws.Query("bestcost"));
    const auto& catalog = ws.catalog();
    for (const auto& row : rows) {
      SB_ASSIGN_OR_RETURN(std::string src, catalog.EntityLabel(row[0]));
      SB_ASSIGN_OR_RETURN(std::string dst, catalog.EntityLabel(row[1]));
      if (src != "p" + std::to_string(i)) continue;  // local routes only
      size_t dst_index = std::stoul(dst.substr(1));
      result.best_costs[i].push_back({dst_index, row[2].AsInt()});
    }
  }
  return result;
}

}  // namespace secureblox::apps
