// Anonymous join over an onion-routed circuit (paper §7.3): an anonymous
// user joins a small local `interests` table against a large remote
// `publicdata` table without transferring either table wholesale and
// without revealing her identity to the data owner.
#ifndef SECUREBLOX_APPS_ANONJOIN_H_
#define SECUREBLOX_APPS_ANONJOIN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "dist/cluster.h"

namespace secureblox::apps {

/// The anonymous-join program (requests by hash, replies along the circuit).
std::string AnonJoinSource();

/// Install an onion circuit through `path` (node indices; front = initiator,
/// back = endpoint): interns circuit entities, inserts the per-node
/// forwarding state (`anon_path*` facts), and loads layer keys into each
/// node's CircuitTable. `destination_principal` is what the initiator's
/// anon_path[] maps to.
Status BuildCircuit(dist::SimCluster* cluster,
                    const std::vector<net::NodeIndex>& path,
                    const std::string& destination_principal,
                    uint64_t key_seed);

struct AnonJoinConfig {
  size_t num_nodes = 4;          // >= 3: initiator, >=1 relay, owner
  size_t interests = 10;         // rows in the local table
  size_t publicdata = 200;       // rows in the remote table
  size_t value_domain = 40;      // join key domain
  uint64_t seed = 1;
  size_t rsa_bits = 512;
  /// §5.2 delivery granularity (see SimCluster::Config).
  size_t max_batch_tuples = 0;
  double max_batch_delay_s = 0;
};

struct AnonJoinResult {
  dist::SimCluster::Metrics metrics;
  size_t results_at_initiator = 0;
  size_t expected_results = 0;
  /// The data owner must never learn the initiator's principal: true when
  /// no says/anon fact at the owner mentions it.
  bool initiator_hidden_from_owner = true;
};

Result<AnonJoinResult> RunAnonJoin(const AnonJoinConfig& config);

}  // namespace secureblox::apps

#endif  // SECUREBLOX_APPS_ANONJOIN_H_
