// Path-vector routing protocol (paper §7.1): a distributed all-pairs-
// shortest-path computation that propagates the full composition of each
// path so nodes can apply policy to it.
//
// Following the paper's footnote 4, path identity is handled with an
// explicit extension map: `extend[P,U] = P2` creates (via a head
// existential) one fresh path entity per (path, neighbour) extension, so
// path compositions never collide under the functional dependencies.
#ifndef SECUREBLOX_APPS_PATHVECTOR_H_
#define SECUREBLOX_APPS_PATHVECTOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "dist/cluster.h"
#include "policy/says_policy.h"

namespace secureblox::apps {

/// The path-vector program (schema + rules + exportable markers).
std::string PathVectorSource();

/// Undirected edge in the input topology.
struct Edge {
  size_t a = 0;
  size_t b = 0;
};

/// Connected random graph with the paper's average node degree of three:
/// a random spanning tree plus random extra edges up to ~3n/2 total.
std::vector<Edge> RandomConnectedGraph(size_t n, double avg_degree,
                                       uint64_t seed);

struct PathVectorConfig {
  size_t num_nodes = 6;
  policy::AuthScheme auth = policy::AuthScheme::kNone;
  policy::EncScheme enc = policy::EncScheme::kNone;
  uint64_t graph_seed = 1;
  double avg_degree = 3.0;
  size_t rsa_bits = 1024;
  double compute_scale = 1.0;
  /// false (default): one signature/MAC per outgoing message — the paper's
  /// measured configuration ("we have found it useful to sign aggregates
  /// of serialized facts", footnote 2).
  /// true: the says policy signs and verifies every fact individually
  /// (ablation: per-tuple vs per-batch signing).
  bool per_fact_policy = false;
  /// §5.2 delivery granularity (see SimCluster::Config): max tuples per
  /// coalesced transaction (0 = unbounded, 1 = per-message) and extra
  /// simulated batch-open delay.
  size_t max_batch_tuples = 0;
  double max_batch_delay_s = 0;
};

struct PathVectorResult {
  dist::SimCluster::Metrics metrics;
  /// bestcost[self, dst] rows per node: hop counts for verification.
  std::vector<std::vector<std::pair<size_t, int64_t>>> best_costs;
};

/// Build the cluster, run the protocol to a distributed fixpoint on a
/// random graph, and collect metrics plus the converged routing tables.
Result<PathVectorResult> RunPathVector(const PathVectorConfig& config);

/// Reference shortest-path hop counts (BFS) for validation.
std::vector<std::vector<int64_t>> ReferenceHopCounts(
    size_t n, const std::vector<Edge>& edges);

}  // namespace secureblox::apps

#endif  // SECUREBLOX_APPS_PATHVECTOR_H_
