#include "common/status.h"

namespace secureblox {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kCompileError:
      return "CompileError";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kTransactionAborted:
      return "TransactionAborted";
    case StatusCode::kCryptoError:
      return "CryptoError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace secureblox
