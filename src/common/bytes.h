// Byte-buffer utilities: owned byte strings, hex codecs, and bounds-checked
// big-endian readers/writers used by the wire format and crypto modules.
#ifndef SECUREBLOX_COMMON_BYTES_H_
#define SECUREBLOX_COMMON_BYTES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace secureblox {

/// Owned, growable byte sequence. A thin alias keeps call sites readable.
using Bytes = std::vector<uint8_t>;

/// Lowercase hex encoding of `data`.
std::string ToHex(const Bytes& data);
std::string ToHex(const uint8_t* data, size_t len);

/// Decode lowercase/uppercase hex. Fails on odd length or non-hex chars.
Result<Bytes> FromHex(const std::string& hex);

/// Convert between Bytes and std::string payloads.
Bytes BytesFromString(const std::string& s);
std::string StringFromBytes(const Bytes& b);

/// Constant-time equality for MAC/signature comparisons.
bool ConstantTimeEquals(const Bytes& a, const Bytes& b);

/// Append-only big-endian serializer.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// Unsigned LEB128 varint.
  void PutVarint(uint64_t v);
  /// Raw bytes, no length prefix.
  void PutRaw(const uint8_t* data, size_t len);
  void PutRaw(const Bytes& data) { PutRaw(data.data(), data.size()); }
  /// Varint length prefix followed by the bytes.
  void PutLengthPrefixed(const Bytes& data);
  void PutLengthPrefixedString(const std::string& s);

  const Bytes& bytes() const { return out_; }
  Bytes Take() { return std::move(out_); }
  size_t size() const { return out_.size(); }

 private:
  Bytes out_;
};

/// Bounds-checked big-endian deserializer over a borrowed buffer.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}
  explicit ByteReader(const Bytes& data)
      : data_(data.data()), len_(data.size()) {}
  // ByteReader borrows the buffer; binding a temporary would dangle.
  explicit ByteReader(Bytes&&) = delete;

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<uint64_t> GetVarint();
  Result<Bytes> GetRaw(size_t len);
  Result<Bytes> GetLengthPrefixed();
  Result<std::string> GetLengthPrefixedString();

  size_t remaining() const { return len_ - pos_; }
  bool AtEnd() const { return pos_ == len_; }
  size_t position() const { return pos_; }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

}  // namespace secureblox

#endif  // SECUREBLOX_COMMON_BYTES_H_
