#include "common/bytes.h"

namespace secureblox {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string ToHex(const uint8_t* data, size_t len) {
  std::string out;
  out.reserve(len * 2);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kHexDigits[data[i] >> 4]);
    out.push_back(kHexDigits[data[i] & 0xF]);
  }
  return out;
}

std::string ToHex(const Bytes& data) { return ToHex(data.data(), data.size()); }

Result<Bytes> FromHex(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexValue(hex[i]);
    int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("non-hex character in hex string");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes BytesFromString(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

std::string StringFromBytes(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

bool ConstantTimeEquals(const Bytes& a, const Bytes& b) {
  if (a.size() != b.size()) return false;
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

void ByteWriter::PutU16(uint16_t v) {
  PutU8(static_cast<uint8_t>(v >> 8));
  PutU8(static_cast<uint8_t>(v));
}

void ByteWriter::PutU32(uint32_t v) {
  PutU16(static_cast<uint16_t>(v >> 16));
  PutU16(static_cast<uint16_t>(v));
}

void ByteWriter::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v >> 32));
  PutU32(static_cast<uint32_t>(v));
}

void ByteWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    PutU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  PutU8(static_cast<uint8_t>(v));
}

void ByteWriter::PutRaw(const uint8_t* data, size_t len) {
  out_.insert(out_.end(), data, data + len);
}

void ByteWriter::PutLengthPrefixed(const Bytes& data) {
  PutVarint(data.size());
  PutRaw(data);
}

void ByteWriter::PutLengthPrefixedString(const std::string& s) {
  PutVarint(s.size());
  out_.insert(out_.end(), s.begin(), s.end());
}

Result<uint8_t> ByteReader::GetU8() {
  if (remaining() < 1) return Status::InvalidArgument("buffer underflow (u8)");
  return data_[pos_++];
}

Result<uint16_t> ByteReader::GetU16() {
  if (remaining() < 2) return Status::InvalidArgument("buffer underflow (u16)");
  uint16_t v = (static_cast<uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1];
  pos_ += 2;
  return v;
}

Result<uint32_t> ByteReader::GetU32() {
  if (remaining() < 4) return Status::InvalidArgument("buffer underflow (u32)");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::GetU64() {
  if (remaining() < 8) return Status::InvalidArgument("buffer underflow (u64)");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 8;
  return v;
}

Result<uint64_t> ByteReader::GetVarint() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (remaining() < 1) {
      return Status::InvalidArgument("buffer underflow (varint)");
    }
    uint8_t b = data_[pos_++];
    if (shift >= 63 && (b & 0x7F) > 1) {
      return Status::InvalidArgument("varint overflow");
    }
    v |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

Result<Bytes> ByteReader::GetRaw(size_t len) {
  if (remaining() < len) return Status::InvalidArgument("buffer underflow");
  Bytes out(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
  return out;
}

Result<Bytes> ByteReader::GetLengthPrefixed() {
  SB_ASSIGN_OR_RETURN(uint64_t len, GetVarint());
  if (len > remaining()) {
    return Status::InvalidArgument("length prefix exceeds buffer");
  }
  return GetRaw(static_cast<size_t>(len));
}

Result<std::string> ByteReader::GetLengthPrefixedString() {
  SB_ASSIGN_OR_RETURN(Bytes b, GetLengthPrefixed());
  return StringFromBytes(b);
}

}  // namespace secureblox
