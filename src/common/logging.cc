#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace secureblox {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelName(level) << " " << (base ? base + 1 : file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < GetLogLevel()) return;
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal

}  // namespace secureblox
