// Minimal leveled logging. Disabled below the global threshold at runtime;
// meant for diagnostics, not hot paths.
#ifndef SECUREBLOX_COMMON_LOGGING_H_
#define SECUREBLOX_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace secureblox {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Set / get the global minimum level that is emitted (default: kWarning).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is filtered out.
class NullLog {
 public:
  template <typename T>
  NullLog& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define SB_LOG(level)                                               \
  (::secureblox::LogLevel::k##level < ::secureblox::GetLogLevel())  \
      ? (void)0                                                     \
      : (void)(::secureblox::internal::LogMessage(                  \
            ::secureblox::LogLevel::k##level, __FILE__, __LINE__))

// Streaming form: SB_LOG_STREAM(Info) << "x=" << x;
#define SB_LOG_STREAM(level)                                 \
  ::secureblox::internal::LogMessage(                        \
      ::secureblox::LogLevel::k##level, __FILE__, __LINE__)

}  // namespace secureblox

#endif  // SECUREBLOX_COMMON_LOGGING_H_
