#include "common/random.h"

namespace secureblox {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Xoshiro256::Xoshiro256(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
}

uint64_t Xoshiro256::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Xoshiro256::Uniform(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Xoshiro256::UniformInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Xoshiro256::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

}  // namespace secureblox
