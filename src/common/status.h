// Status / Result error handling for SecureBlox.
//
// SecureBlox does not throw exceptions across API boundaries. Fallible
// operations return `Status` (or `Result<T>` when they produce a value),
// following the convention of production database codebases.
#ifndef SECUREBLOX_COMMON_STATUS_H_
#define SECUREBLOX_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace secureblox {

/// Broad classification of an error. Kept deliberately small; the message
/// carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotFound,          // lookup failed
  kAlreadyExists,     // duplicate definition
  kParseError,        // lexer/parser rejected input
  kTypeError,         // static type checking failed
  kCompileError,      // generics compilation / stratification failed
  kConstraintViolation,  // runtime integrity constraint failed
  kTransactionAborted,   // transaction rolled back
  kCryptoError,       // signature/MAC verification or key failure
  kIoError,           // transport / socket failure
  kInternal,          // invariant broken inside the library
  kUnimplemented,
};

/// Human-readable name of a status code (e.g. "TypeError").
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy in the OK case.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status ParseError(std::string m) {
    return Status(StatusCode::kParseError, std::move(m));
  }
  static Status TypeError(std::string m) {
    return Status(StatusCode::kTypeError, std::move(m));
  }
  static Status CompileError(std::string m) {
    return Status(StatusCode::kCompileError, std::move(m));
  }
  static Status ConstraintViolation(std::string m) {
    return Status(StatusCode::kConstraintViolation, std::move(m));
  }
  static Status TransactionAborted(std::string m) {
    return Status(StatusCode::kTransactionAborted, std::move(m));
  }
  static Status CryptoError(std::string m) {
    return Status(StatusCode::kCryptoError, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value of type T or an error Status. Like absl::StatusOr / arrow::Result.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): by-design implicit, like
  // absl::StatusOr, so `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present
};

// Propagate a non-OK Status from an expression.
#define SB_RETURN_IF_ERROR(expr)                 \
  do {                                           \
    ::secureblox::Status _sb_st = (expr);        \
    if (!_sb_st.ok()) return _sb_st;             \
  } while (0)

// Evaluate a Result<T> expression; on error return its Status, otherwise
// bind the value to `lhs`.
#define SB_ASSIGN_OR_RETURN(lhs, expr)             \
  auto SB_CONCAT_(_sb_res_, __LINE__) = (expr);    \
  if (!SB_CONCAT_(_sb_res_, __LINE__).ok())        \
    return SB_CONCAT_(_sb_res_, __LINE__).status(); \
  lhs = std::move(SB_CONCAT_(_sb_res_, __LINE__)).value()

#define SB_CONCAT_INNER_(a, b) a##b
#define SB_CONCAT_(a, b) SB_CONCAT_INNER_(a, b)

}  // namespace secureblox

#endif  // SECUREBLOX_COMMON_STATUS_H_
