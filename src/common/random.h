// Deterministic pseudo-random generators for workloads and simulation.
//
// These are NOT cryptographic generators; crypto code uses HmacDrbg from
// src/crypto/hmac_drbg.h. Workload generation must be reproducible across
// runs, so everything here is seeded explicitly.
#ifndef SECUREBLOX_COMMON_RANDOM_H_
#define SECUREBLOX_COMMON_RANDOM_H_

#include <cstdint>

namespace secureblox {

/// SplitMix64: tiny, high-quality seeding/stream generator.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256**: fast general-purpose PRNG for workload generation.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed);

  uint64_t Next();
  /// Uniform in [0, bound) without modulo bias (bound must be > 0).
  uint64_t Uniform(uint64_t bound);
  /// Uniform in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);
  /// Uniform double in [0, 1).
  double UniformDouble();
  /// Bernoulli trial with probability p.
  bool Chance(double p) { return UniformDouble() < p; }

 private:
  uint64_t s_[4];
};

}  // namespace secureblox

#endif  // SECUREBLOX_COMMON_RANDOM_H_
