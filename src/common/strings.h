// Small string helpers shared across modules.
#ifndef SECUREBLOX_COMMON_STRINGS_H_
#define SECUREBLOX_COMMON_STRINGS_H_

#include <string>
#include <vector>

namespace secureblox {

/// Join `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Split `s` on character `sep` (no empty-trailing suppression).
std::vector<std::string> Split(const std::string& s, char sep);

/// Strip ASCII whitespace from both ends.
std::string Trim(const std::string& s);

/// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(const std::string& s, const std::string& prefix);
bool EndsWith(const std::string& s, const std::string& suffix);

}  // namespace secureblox

#endif  // SECUREBLOX_COMMON_STRINGS_H_
