// SHA-1 (FIPS 180-4). Used for HMAC-SHA1 message authentication, RSA
// signature digests, and hash-partitioning in the parallel hash join —
// matching the schemes evaluated in the SecureBlox paper (2010-era). Not
// collision-resistant by modern standards; kept for fidelity to the paper.
#ifndef SECUREBLOX_CRYPTO_SHA1_H_
#define SECUREBLOX_CRYPTO_SHA1_H_

#include <cstdint>

#include "common/bytes.h"

namespace secureblox::crypto {

/// Incremental SHA-1 hasher.
class Sha1 {
 public:
  static constexpr size_t kDigestSize = 20;
  static constexpr size_t kBlockSize = 64;

  Sha1();

  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }

  /// Finalize and return the 20-byte digest. The hasher must not be reused
  /// afterwards without Reset().
  Bytes Finish();

  void Reset();

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t h_[5];
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_ = 0;
  uint64_t total_len_ = 0;
};

/// One-shot convenience.
Bytes Sha1Digest(const Bytes& data);
Bytes Sha1Digest(const uint8_t* data, size_t len);

}  // namespace secureblox::crypto

#endif  // SECUREBLOX_CRYPTO_SHA1_H_
