#include "crypto/hmac_drbg.h"

#include "crypto/hmac.h"

namespace secureblox::crypto {

HmacDrbg::HmacDrbg(const Bytes& seed)
    : key_(32, 0x00), v_(32, 0x01) {
  Update(seed);
}

void HmacDrbg::Update(const Bytes& data) {
  // K = HMAC(K, V || 0x00 || data); V = HMAC(K, V)
  Bytes msg = v_;
  msg.push_back(0x00);
  msg.insert(msg.end(), data.begin(), data.end());
  key_ = HmacSha256(key_, msg);
  v_ = HmacSha256(key_, v_);
  if (!data.empty()) {
    msg = v_;
    msg.push_back(0x01);
    msg.insert(msg.end(), data.begin(), data.end());
    key_ = HmacSha256(key_, msg);
    v_ = HmacSha256(key_, v_);
  }
}

Bytes HmacDrbg::Generate(size_t len) {
  Bytes out;
  out.reserve(len);
  while (out.size() < len) {
    v_ = HmacSha256(key_, v_);
    size_t take = std::min(len - out.size(), v_.size());
    out.insert(out.end(), v_.begin(), v_.begin() + take);
  }
  Update({});
  return out;
}

void HmacDrbg::Reseed(const Bytes& seed) { Update(seed); }

uint32_t HmacDrbg::NextU32() {
  Bytes b = Generate(4);
  return (static_cast<uint32_t>(b[0]) << 24) |
         (static_cast<uint32_t>(b[1]) << 16) |
         (static_cast<uint32_t>(b[2]) << 8) | b[3];
}

}  // namespace secureblox::crypto
