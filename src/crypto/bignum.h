// Arbitrary-precision unsigned integers for RSA.
//
// Little-endian 32-bit limbs with 64-bit intermediates. Division uses Knuth
// TAOCP vol. 2 Algorithm D so that 1024-bit modular exponentiation stays in
// the low-millisecond range, comparable to the 2010-era hardware the paper
// benchmarks on.
#ifndef SECUREBLOX_CRYPTO_BIGNUM_H_
#define SECUREBLOX_CRYPTO_BIGNUM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace secureblox::crypto {

/// Unsigned big integer. Value semantics; zero is the empty limb vector.
class BigNum {
 public:
  BigNum() = default;

  static BigNum FromU64(uint64_t v);
  /// Big-endian byte interpretation.
  static BigNum FromBytes(const Bytes& bytes);
  static Result<BigNum> FromHex(const std::string& hex);

  /// Big-endian bytes, minimal length (empty for zero) or padded/truncated
  /// to `fixed_len` when >= 0.
  Bytes ToBytes(int fixed_len = -1) const;
  std::string ToHex() const;
  /// Value as uint64_t; asserts that it fits.
  uint64_t ToU64() const;

  bool IsZero() const { return limbs_.empty(); }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  /// Number of significant bits (0 for zero).
  size_t BitLength() const;
  bool Bit(size_t i) const;

  /// Three-way comparison: -1, 0, +1.
  static int Cmp(const BigNum& a, const BigNum& b);
  bool operator==(const BigNum& o) const { return Cmp(*this, o) == 0; }
  bool operator!=(const BigNum& o) const { return Cmp(*this, o) != 0; }
  bool operator<(const BigNum& o) const { return Cmp(*this, o) < 0; }
  bool operator<=(const BigNum& o) const { return Cmp(*this, o) <= 0; }
  bool operator>(const BigNum& o) const { return Cmp(*this, o) > 0; }
  bool operator>=(const BigNum& o) const { return Cmp(*this, o) >= 0; }

  static BigNum Add(const BigNum& a, const BigNum& b);
  /// Requires a >= b.
  static BigNum Sub(const BigNum& a, const BigNum& b);
  static BigNum Mul(const BigNum& a, const BigNum& b);
  /// Knuth Algorithm D. Requires !b.IsZero().
  static void DivMod(const BigNum& a, const BigNum& b, BigNum* quotient,
                     BigNum* remainder);
  static BigNum Mod(const BigNum& a, const BigNum& m);
  /// Remainder of division by a single 32-bit limb (m != 0).
  static uint32_t ModU32(const BigNum& a, uint32_t m);

  BigNum ShiftLeft(size_t bits) const;
  BigNum ShiftRight(size_t bits) const;

  /// (base ^ exp) mod m. Uses Montgomery multiplication for odd moduli
  /// (the RSA case) and falls back to division-based square-and-multiply
  /// otherwise. Requires !m.IsZero().
  static BigNum ModExp(const BigNum& base, const BigNum& exp, const BigNum& m);

  static BigNum Gcd(BigNum a, BigNum b);
  /// Modular inverse of a mod m; error when gcd(a, m) != 1.
  static Result<BigNum> ModInverse(const BigNum& a, const BigNum& m);

  /// Uniform value with exactly `bits` significant bits drawn from `rng`
  /// (rng returns uniform uint32 words).
  static BigNum RandomBits(size_t bits, const std::function<uint32_t()>& rng);

  /// Miller-Rabin probabilistic primality test with `rounds` random bases.
  static bool IsProbablePrime(const BigNum& n, int rounds,
                              const std::function<uint32_t()>& rng);

  /// Random probable prime with exactly `bits` bits (top two bits set so
  /// products have full length).
  static BigNum GeneratePrime(size_t bits, const std::function<uint32_t()>& rng);

  const std::vector<uint32_t>& limbs() const { return limbs_; }

 private:
  void Normalize();

  std::vector<uint32_t> limbs_;  // little-endian, no trailing zero limbs
};

}  // namespace secureblox::crypto

#endif  // SECUREBLOX_CRYPTO_BIGNUM_H_
