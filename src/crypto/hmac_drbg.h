// HMAC-DRBG (NIST SP 800-90A) over HMAC-SHA256.
//
// Deterministic random bit generator used for key generation and nonces.
// Seeding is explicit so test/benchmark runs are reproducible; a production
// deployment would seed from the OS entropy pool.
#ifndef SECUREBLOX_CRYPTO_HMAC_DRBG_H_
#define SECUREBLOX_CRYPTO_HMAC_DRBG_H_

#include <cstdint>

#include "common/bytes.h"

namespace secureblox::crypto {

/// Deterministic HMAC-SHA256 DRBG.
class HmacDrbg {
 public:
  /// Instantiate from seed material (entropy || nonce || personalization).
  explicit HmacDrbg(const Bytes& seed);

  /// Generate `len` pseudo-random bytes.
  Bytes Generate(size_t len);

  /// Mix additional entropy into the state.
  void Reseed(const Bytes& seed);

  /// Uniform 32-bit word (convenience for BigNum::RandomBits).
  uint32_t NextU32();

 private:
  void Update(const Bytes& data);

  Bytes key_;  // K
  Bytes v_;    // V
};

}  // namespace secureblox::crypto

#endif  // SECUREBLOX_CRYPTO_HMAC_DRBG_H_
