// RSA signatures (PKCS#1 v1.5 with SHA-1 DigestInfo), as evaluated in the
// SecureBlox paper: "RSA authentication signs a SHA-1 digest of the data
// with the private key of the sender ... a 1024-bit keysize".
//
// Signing uses the Chinese Remainder Theorem for the usual ~4x speedup.
#ifndef SECUREBLOX_CRYPTO_RSA_H_
#define SECUREBLOX_CRYPTO_RSA_H_

#include <functional>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/bignum.h"

namespace secureblox::crypto {

/// Public half of an RSA keypair.
struct RsaPublicKey {
  BigNum n;  // modulus
  BigNum e;  // public exponent (65537)

  size_t ModulusBytes() const { return (n.BitLength() + 7) / 8; }

  /// Wire encoding: len-prefixed n || len-prefixed e.
  Bytes Serialize() const;
  static Result<RsaPublicKey> Deserialize(const Bytes& data);
};

/// Full RSA keypair with CRT parameters.
struct RsaKeyPair {
  RsaPublicKey pub;
  BigNum d;      // private exponent
  BigNum p, q;   // prime factors
  BigNum dp, dq; // d mod (p-1), d mod (q-1)
  BigNum qinv;   // q^-1 mod p
};

/// Generate a keypair with a modulus of `bits` bits (e = 65537).
/// `rng` supplies uniform 32-bit words (e.g. from HmacDrbg::NextU32).
Result<RsaKeyPair> RsaGenerateKeyPair(size_t bits,
                                      const std::function<uint32_t()>& rng);

/// Sign `message` (PKCS#1 v1.5, SHA-1). Returns a modulus-sized signature.
Result<Bytes> RsaSign(const RsaKeyPair& key, const Bytes& message);

/// Verify a PKCS#1 v1.5 SHA-1 signature.
bool RsaVerify(const RsaPublicKey& key, const Bytes& message,
               const Bytes& signature);

}  // namespace secureblox::crypto

#endif  // SECUREBLOX_CRYPTO_RSA_H_
