#include "crypto/hmac.h"

#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace secureblox::crypto {

namespace {

// Generic HMAC over an incremental hasher type.
template <typename Hasher>
Bytes HmacImpl(const Bytes& key, const Bytes& message) {
  constexpr size_t kBlock = Hasher::kBlockSize;
  Bytes k = key;
  if (k.size() > kBlock) {
    Hasher h;
    h.Update(k);
    k = h.Finish();
  }
  k.resize(kBlock, 0x00);

  Bytes ipad(kBlock), opad(kBlock);
  for (size_t i = 0; i < kBlock; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Hasher inner;
  inner.Update(ipad);
  inner.Update(message);
  Bytes inner_digest = inner.Finish();

  Hasher outer;
  outer.Update(opad);
  outer.Update(inner_digest);
  return outer.Finish();
}

}  // namespace

Bytes HmacSha1(const Bytes& key, const Bytes& message) {
  return HmacImpl<Sha1>(key, message);
}

Bytes HmacSha256(const Bytes& key, const Bytes& message) {
  return HmacImpl<Sha256>(key, message);
}

bool HmacSha1Verify(const Bytes& key, const Bytes& message, const Bytes& mac) {
  return ConstantTimeEquals(HmacSha1(key, message), mac);
}

}  // namespace secureblox::crypto
