#include "crypto/rsa.h"

#include "crypto/sha1.h"

namespace secureblox::crypto {

namespace {

// ASN.1 DigestInfo prefix for SHA-1 (RFC 8017 §9.2).
constexpr uint8_t kSha1DigestInfo[] = {0x30, 0x21, 0x30, 0x09, 0x06,
                                       0x05, 0x2b, 0x0e, 0x03, 0x02,
                                       0x1a, 0x05, 0x00, 0x04, 0x14};

// EMSA-PKCS1-v1_5 encoding of the SHA-1 digest of `message` into `em_len`
// bytes: 0x00 0x01 FF..FF 0x00 DigestInfo digest.
Result<Bytes> EmsaPkcs1V15Encode(const Bytes& message, size_t em_len) {
  Bytes digest = Sha1Digest(message);
  size_t t_len = sizeof(kSha1DigestInfo) + digest.size();
  if (em_len < t_len + 11) {
    return Status::CryptoError("RSA modulus too small for PKCS#1 v1.5");
  }
  Bytes em(em_len, 0xFF);
  em[0] = 0x00;
  em[1] = 0x01;
  em[em_len - t_len - 1] = 0x00;
  std::copy(std::begin(kSha1DigestInfo), std::end(kSha1DigestInfo),
            em.begin() + (em_len - t_len));
  std::copy(digest.begin(), digest.end(),
            em.begin() + (em_len - digest.size()));
  return em;
}

}  // namespace

Bytes RsaPublicKey::Serialize() const {
  ByteWriter w;
  w.PutLengthPrefixed(n.ToBytes());
  w.PutLengthPrefixed(e.ToBytes());
  return w.Take();
}

Result<RsaPublicKey> RsaPublicKey::Deserialize(const Bytes& data) {
  ByteReader r(data);
  SB_ASSIGN_OR_RETURN(Bytes n_bytes, r.GetLengthPrefixed());
  SB_ASSIGN_OR_RETURN(Bytes e_bytes, r.GetLengthPrefixed());
  RsaPublicKey key;
  key.n = BigNum::FromBytes(n_bytes);
  key.e = BigNum::FromBytes(e_bytes);
  if (key.n.IsZero() || key.e.IsZero()) {
    return Status::CryptoError("invalid RSA public key encoding");
  }
  return key;
}

Result<RsaKeyPair> RsaGenerateKeyPair(size_t bits,
                                      const std::function<uint32_t()>& rng) {
  if (bits < 128 || bits % 2 != 0) {
    return Status::InvalidArgument("RSA modulus bits must be even and >= 128");
  }
  const BigNum e = BigNum::FromU64(65537);
  const BigNum one = BigNum::FromU64(1);

  while (true) {
    BigNum p = BigNum::GeneratePrime(bits / 2, rng);
    BigNum q = BigNum::GeneratePrime(bits / 2, rng);
    if (p == q) continue;
    if (p < q) std::swap(p, q);  // keep p > q for CRT

    BigNum p1 = BigNum::Sub(p, one);
    BigNum q1 = BigNum::Sub(q, one);
    BigNum phi = BigNum::Mul(p1, q1);
    if (BigNum::Gcd(e, phi) != one) continue;

    RsaKeyPair key;
    key.pub.n = BigNum::Mul(p, q);
    key.pub.e = e;
    if (key.pub.n.BitLength() != bits) continue;
    auto d = BigNum::ModInverse(e, phi);
    if (!d.ok()) continue;
    key.d = std::move(d).value();
    key.p = p;
    key.q = q;
    key.dp = BigNum::Mod(key.d, p1);
    key.dq = BigNum::Mod(key.d, q1);
    auto qinv = BigNum::ModInverse(q, p);
    if (!qinv.ok()) continue;
    key.qinv = std::move(qinv).value();
    return key;
  }
}

Result<Bytes> RsaSign(const RsaKeyPair& key, const Bytes& message) {
  size_t k = key.pub.ModulusBytes();
  SB_ASSIGN_OR_RETURN(Bytes em, EmsaPkcs1V15Encode(message, k));
  BigNum m = BigNum::FromBytes(em);
  if (m >= key.pub.n) return Status::CryptoError("message rep out of range");

  // CRT: s = m^d mod n computed from the halves.
  BigNum s1 = BigNum::ModExp(m, key.dp, key.p);
  BigNum s2 = BigNum::ModExp(m, key.dq, key.q);
  // h = qinv * (s1 - s2) mod p
  BigNum diff;
  if (s1 >= s2) {
    diff = BigNum::Sub(s1, s2);
  } else {
    diff = BigNum::Sub(BigNum::Add(s1, key.p), s2);
  }
  BigNum h = BigNum::Mod(BigNum::Mul(key.qinv, diff), key.p);
  BigNum s = BigNum::Add(s2, BigNum::Mul(h, key.q));
  return s.ToBytes(static_cast<int>(k));
}

bool RsaVerify(const RsaPublicKey& key, const Bytes& message,
               const Bytes& signature) {
  size_t k = key.ModulusBytes();
  if (signature.size() != k) return false;
  BigNum s = BigNum::FromBytes(signature);
  if (s >= key.n) return false;
  BigNum m = BigNum::ModExp(s, key.e, key.n);
  Bytes em = m.ToBytes(static_cast<int>(k));
  auto expected = EmsaPkcs1V15Encode(message, k);
  if (!expected.ok()) return false;
  return ConstantTimeEquals(em, expected.value());
}

}  // namespace secureblox::crypto
