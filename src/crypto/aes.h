// AES-128 (FIPS 197) block cipher plus CTR-mode stream encryption.
//
// The paper encrypts serialized fact batches with AES under pairwise
// 128-bit shared secrets. We use CTR mode with a random 16-byte nonce
// prepended to the ciphertext; decryption is the same keystream XOR.
#ifndef SECUREBLOX_CRYPTO_AES_H_
#define SECUREBLOX_CRYPTO_AES_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"

namespace secureblox::crypto {

/// AES-128 block cipher with a fixed expanded key schedule.
class Aes128 {
 public:
  static constexpr size_t kBlockSize = 16;
  static constexpr size_t kKeySize = 16;

  /// Key must be exactly 16 bytes.
  static Result<Aes128> Create(const Bytes& key);

  /// Encrypt one 16-byte block in place.
  void EncryptBlock(uint8_t block[kBlockSize]) const;
  /// Decrypt one 16-byte block in place.
  void DecryptBlock(uint8_t block[kBlockSize]) const;

 private:
  Aes128() = default;
  void ExpandKey(const uint8_t key[kKeySize]);

  // 11 round keys of 16 bytes.
  std::array<uint8_t, 176> round_keys_{};
};

/// CTR-mode encryption: output = nonce(16) || plaintext XOR keystream.
/// `nonce` must be 16 bytes; use a fresh random nonce per message.
Result<Bytes> AesCtrEncrypt(const Bytes& key, const Bytes& nonce,
                            const Bytes& plaintext);

/// CTR-mode decryption of a nonce-prefixed ciphertext.
Result<Bytes> AesCtrDecrypt(const Bytes& key, const Bytes& ciphertext);

}  // namespace secureblox::crypto

#endif  // SECUREBLOX_CRYPTO_AES_H_
