// SHA-256 (FIPS 180-4). Used by the HMAC-DRBG deterministic random bit
// generator that seeds key generation.
#ifndef SECUREBLOX_CRYPTO_SHA256_H_
#define SECUREBLOX_CRYPTO_SHA256_H_

#include <cstdint>

#include "common/bytes.h"

namespace secureblox::crypto {

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256();

  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  Bytes Finish();
  void Reset();

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t h_[8];
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_ = 0;
  uint64_t total_len_ = 0;
};

/// One-shot convenience.
Bytes Sha256Digest(const Bytes& data);

}  // namespace secureblox::crypto

#endif  // SECUREBLOX_CRYPTO_SHA256_H_
