#include "crypto/bignum.h"

#include <bit>
#include <cassert>

namespace secureblox::crypto {

namespace {
constexpr uint64_t kBase = 1ULL << 32;

// Small primes for trial division before Miller-Rabin.
constexpr uint32_t kSmallPrimes[] = {
    3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,  47,
    53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107, 109,
    113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191,
    193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269,
    271, 277, 281, 283, 293, 307, 311, 313, 317, 331, 337, 347, 349, 353};
}  // namespace

void BigNum::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigNum BigNum::FromU64(uint64_t v) {
  BigNum n;
  if (v != 0) {
    n.limbs_.push_back(static_cast<uint32_t>(v));
    if (v >> 32) n.limbs_.push_back(static_cast<uint32_t>(v >> 32));
  }
  return n;
}

BigNum BigNum::FromBytes(const Bytes& bytes) {
  BigNum n;
  n.limbs_.assign((bytes.size() + 3) / 4, 0);
  for (size_t i = 0; i < bytes.size(); ++i) {
    // bytes[i] is the most significant remaining byte.
    size_t bit_pos = (bytes.size() - 1 - i) * 8;
    n.limbs_[bit_pos / 32] |= static_cast<uint32_t>(bytes[i])
                              << (bit_pos % 32);
  }
  n.Normalize();
  return n;
}

Result<BigNum> BigNum::FromHex(const std::string& hex) {
  std::string padded = hex.size() % 2 ? "0" + hex : hex;
  SB_ASSIGN_OR_RETURN(Bytes b, secureblox::FromHex(padded));
  return FromBytes(b);
}

Bytes BigNum::ToBytes(int fixed_len) const {
  size_t min_len = (BitLength() + 7) / 8;
  size_t len = fixed_len >= 0 ? static_cast<size_t>(fixed_len) : min_len;
  Bytes out(len, 0);
  for (size_t i = 0; i < len; ++i) {
    size_t bit_pos = i * 8;  // i-th least significant byte
    size_t limb = bit_pos / 32;
    if (limb < limbs_.size()) {
      out[len - 1 - i] =
          static_cast<uint8_t>(limbs_[limb] >> (bit_pos % 32));
    }
  }
  return out;
}

std::string BigNum::ToHex() const {
  if (IsZero()) return "0";
  std::string s = secureblox::ToHex(ToBytes());
  size_t first = s.find_first_not_of('0');
  return s.substr(first == std::string::npos ? s.size() - 1 : first);
}

uint64_t BigNum::ToU64() const {
  assert(limbs_.size() <= 2);
  uint64_t v = 0;
  if (limbs_.size() > 1) v = static_cast<uint64_t>(limbs_[1]) << 32;
  if (!limbs_.empty()) v |= limbs_[0];
  return v;
}

size_t BigNum::BitLength() const {
  if (limbs_.empty()) return 0;
  return limbs_.size() * 32 - std::countl_zero(limbs_.back());
}

bool BigNum::Bit(size_t i) const {
  size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

int BigNum::Cmp(const BigNum& a, const BigNum& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigNum BigNum::Add(const BigNum& a, const BigNum& b) {
  BigNum out;
  size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry;
    if (i < a.limbs_.size()) sum += a.limbs_[i];
    if (i < b.limbs_.size()) sum += b.limbs_[i];
    out.limbs_[i] = static_cast<uint32_t>(sum);
    carry = sum >> 32;
  }
  out.limbs_[n] = static_cast<uint32_t>(carry);
  out.Normalize();
  return out;
}

BigNum BigNum::Sub(const BigNum& a, const BigNum& b) {
  assert(Cmp(a, b) >= 0);
  BigNum out;
  out.limbs_.resize(a.limbs_.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) diff -= b.limbs_[i];
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<uint32_t>(diff);
  }
  out.Normalize();
  return out;
}

BigNum BigNum::Mul(const BigNum& a, const BigNum& b) {
  if (a.IsZero() || b.IsZero()) return BigNum();
  BigNum out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    uint64_t carry = 0;
    uint64_t ai = a.limbs_[i];
    for (size_t j = 0; j < b.limbs_.size(); ++j) {
      uint64_t cur = out.limbs_[i + j] + ai * b.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    out.limbs_[i + b.limbs_.size()] += static_cast<uint32_t>(carry);
  }
  out.Normalize();
  return out;
}

BigNum BigNum::ShiftLeft(size_t bits) const {
  if (IsZero() || bits == 0) {
    BigNum out = *this;
    return out;
  }
  size_t limb_shift = bits / 32;
  size_t bit_shift = bits % 32;
  BigNum out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t v = static_cast<uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<uint32_t>(v >> 32);
  }
  out.Normalize();
  return out;
}

BigNum BigNum::ShiftRight(size_t bits) const {
  size_t limb_shift = bits / 32;
  size_t bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) return BigNum();
  BigNum out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<uint32_t>(v);
  }
  out.Normalize();
  return out;
}

void BigNum::DivMod(const BigNum& a, const BigNum& b, BigNum* quotient,
                    BigNum* remainder) {
  assert(!b.IsZero() && "division by zero");
  if (Cmp(a, b) < 0) {
    if (quotient) *quotient = BigNum();
    if (remainder) *remainder = a;
    return;
  }
  if (b.limbs_.size() == 1) {
    // Single-limb fast path.
    uint64_t divisor = b.limbs_[0];
    BigNum q;
    q.limbs_.assign(a.limbs_.size(), 0);
    uint64_t rem = 0;
    for (size_t i = a.limbs_.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | a.limbs_[i];
      q.limbs_[i] = static_cast<uint32_t>(cur / divisor);
      rem = cur % divisor;
    }
    q.Normalize();
    if (quotient) *quotient = std::move(q);
    if (remainder) *remainder = FromU64(rem);
    return;
  }

  // Knuth TAOCP 4.3.1 Algorithm D.
  size_t shift = std::countl_zero(b.limbs_.back());
  BigNum u = a.ShiftLeft(shift);
  BigNum v = b.ShiftLeft(shift);
  size_t n = v.limbs_.size();
  // Ensure u has one extra limb for the algorithm's u[j+n] access.
  u.limbs_.resize(std::max(u.limbs_.size(), a.limbs_.size() + 1) + 1, 0);
  size_t m = u.limbs_.size() - n - 1;

  BigNum q;
  q.limbs_.assign(m + 1, 0);
  const uint64_t v_hi = v.limbs_[n - 1];
  const uint64_t v_lo = v.limbs_[n - 2];

  for (size_t j = m + 1; j-- > 0;) {
    uint64_t numerator =
        (static_cast<uint64_t>(u.limbs_[j + n]) << 32) | u.limbs_[j + n - 1];
    uint64_t qhat = numerator / v_hi;
    uint64_t rhat = numerator % v_hi;
    while (qhat >= kBase ||
           qhat * v_lo > ((rhat << 32) | u.limbs_[j + n - 2])) {
      --qhat;
      rhat += v_hi;
      if (rhat >= kBase) break;
    }
    // Multiply-subtract qhat * v from u[j .. j+n].
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      uint64_t product = qhat * v.limbs_[i] + carry;
      carry = product >> 32;
      int64_t diff = static_cast<int64_t>(u.limbs_[i + j]) -
                     static_cast<int64_t>(product & 0xFFFFFFFF) - borrow;
      if (diff < 0) {
        diff += static_cast<int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u.limbs_[i + j] = static_cast<uint32_t>(diff);
    }
    int64_t top = static_cast<int64_t>(u.limbs_[j + n]) -
                  static_cast<int64_t>(carry) - borrow;
    if (top < 0) {
      // Add back: qhat was one too large.
      top += static_cast<int64_t>(kBase);
      --qhat;
      uint64_t add_carry = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t sum = static_cast<uint64_t>(u.limbs_[i + j]) + v.limbs_[i] +
                       add_carry;
        u.limbs_[i + j] = static_cast<uint32_t>(sum);
        add_carry = sum >> 32;
      }
      top += static_cast<int64_t>(add_carry);
      top &= 0xFFFFFFFF;
    }
    u.limbs_[j + n] = static_cast<uint32_t>(top);
    q.limbs_[j] = static_cast<uint32_t>(qhat);
  }

  q.Normalize();
  if (quotient) *quotient = std::move(q);
  if (remainder) {
    u.limbs_.resize(n);
    u.Normalize();
    *remainder = u.ShiftRight(shift);
  }
}

BigNum BigNum::Mod(const BigNum& a, const BigNum& m) {
  BigNum r;
  DivMod(a, m, nullptr, &r);
  return r;
}

uint32_t BigNum::ModU32(const BigNum& a, uint32_t m) {
  assert(m != 0);
  uint64_t rem = 0;
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    rem = ((rem << 32) | a.limbs_[i]) % m;
  }
  return static_cast<uint32_t>(rem);
}

namespace {

// Montgomery arithmetic modulo an odd n (word base 2^32).
// Represents x as xR mod n with R = 2^(32*k); multiplication uses the
// CIOS reduction, avoiding per-step long division.
class Montgomery {
 public:
  explicit Montgomery(const BigNum& n) : n_(n.limbs()), k_(n.limbs().size()) {
    // n0inv = -n^-1 mod 2^32 via Newton iteration.
    uint32_t x = 1;
    for (int i = 0; i < 5; ++i) {
      x *= 2 - n_[0] * x;
    }
    n0inv_ = ~x + 1;  // negate mod 2^32
    // R^2 mod n, computed by repeated doubling (2*32*k doublings of 1).
    BigNum r2 = BigNum::FromU64(1);
    for (size_t i = 0; i < 64 * k_; ++i) {
      r2 = BigNum::Add(r2, r2);
      if (BigNum::Cmp(r2, n) >= 0) r2 = BigNum::Sub(r2, n);
    }
    r2_ = ToWords(r2);
  }

  std::vector<uint32_t> ToWords(const BigNum& v) const {
    std::vector<uint32_t> out = v.limbs();
    out.resize(k_, 0);
    return out;
  }

  // Montgomery product: a * b * R^-1 mod n (CIOS).
  std::vector<uint32_t> Mul(const std::vector<uint32_t>& a,
                            const std::vector<uint32_t>& b) const {
    std::vector<uint32_t> t(k_ + 2, 0);
    for (size_t i = 0; i < k_; ++i) {
      // t += a[i] * b
      uint64_t carry = 0;
      uint64_t ai = a[i];
      for (size_t j = 0; j < k_; ++j) {
        uint64_t cur = t[j] + ai * b[j] + carry;
        t[j] = static_cast<uint32_t>(cur);
        carry = cur >> 32;
      }
      uint64_t cur = t[k_] + carry;
      t[k_] = static_cast<uint32_t>(cur);
      t[k_ + 1] += static_cast<uint32_t>(cur >> 32);

      // m = t[0] * n0inv mod 2^32; t += m * n; t >>= 32
      uint32_t m = t[0] * n0inv_;
      carry = 0;
      uint64_t m64 = m;
      uint64_t first = t[0] + m64 * n_[0];
      carry = first >> 32;
      for (size_t j = 1; j < k_; ++j) {
        uint64_t c2 = t[j] + m64 * n_[j] + carry;
        t[j - 1] = static_cast<uint32_t>(c2);
        carry = c2 >> 32;
      }
      uint64_t c3 = t[k_] + carry;
      t[k_ - 1] = static_cast<uint32_t>(c3);
      uint64_t c4 = t[k_ + 1] + (c3 >> 32);
      t[k_] = static_cast<uint32_t>(c4);
      t[k_ + 1] = static_cast<uint32_t>(c4 >> 32);
    }
    t.resize(k_ + 1);
    // Conditional subtraction to bring into [0, n).
    if (GeModulus(t)) SubModulus(&t);
    t.resize(k_);
    return t;
  }

  std::vector<uint32_t> ToMont(const std::vector<uint32_t>& a) const {
    return Mul(a, r2_);
  }
  std::vector<uint32_t> One() const {
    std::vector<uint32_t> one(k_, 0);
    one[0] = 1;
    return ToMont(one);
  }
  // Convert out of Montgomery form: x * R^-1 mod n.
  std::vector<uint32_t> FromMont(const std::vector<uint32_t>& a) const {
    std::vector<uint32_t> one(k_, 0);
    one[0] = 1;
    return Mul(a, one);
  }

 private:
  bool GeModulus(const std::vector<uint32_t>& t) const {
    if (t.size() > k_ && t[k_] != 0) return true;
    for (size_t i = k_; i-- > 0;) {
      if (t[i] != n_[i]) return t[i] > n_[i];
    }
    return true;  // equal counts as >=
  }
  void SubModulus(std::vector<uint32_t>* t) const {
    int64_t borrow = 0;
    for (size_t i = 0; i < k_; ++i) {
      int64_t diff = static_cast<int64_t>((*t)[i]) - n_[i] - borrow;
      borrow = diff < 0;
      if (diff < 0) diff += 1LL << 32;
      (*t)[i] = static_cast<uint32_t>(diff);
    }
    if (t->size() > k_) {
      (*t)[k_] = static_cast<uint32_t>((*t)[k_] - borrow);
    }
  }

  std::vector<uint32_t> n_;
  size_t k_;
  uint32_t n0inv_;
  std::vector<uint32_t> r2_;
};

BigNum FromWords(std::vector<uint32_t> words) {
  // Rebuild via bytes to reuse normalization.
  Bytes be;
  for (size_t i = words.size(); i-- > 0;) {
    be.push_back(static_cast<uint8_t>(words[i] >> 24));
    be.push_back(static_cast<uint8_t>(words[i] >> 16));
    be.push_back(static_cast<uint8_t>(words[i] >> 8));
    be.push_back(static_cast<uint8_t>(words[i]));
  }
  return BigNum::FromBytes(be);
}

}  // namespace

BigNum BigNum::ModExp(const BigNum& base, const BigNum& exp, const BigNum& m) {
  assert(!m.IsZero());
  if (m == FromU64(1)) return BigNum();
  if (exp.IsZero()) return FromU64(1);

  if (m.IsOdd() && m.limbs().size() >= 2) {
    // Montgomery ladder (square-and-multiply over Montgomery residues).
    Montgomery mont(m);
    std::vector<uint32_t> b = mont.ToMont(mont.ToWords(Mod(base, m)));
    std::vector<uint32_t> acc = mont.One();
    for (size_t i = exp.BitLength(); i-- > 0;) {
      acc = mont.Mul(acc, acc);
      if (exp.Bit(i)) acc = mont.Mul(acc, b);
    }
    return FromWords(mont.FromMont(acc));
  }

  // Fallback: division-based square-and-multiply (even or tiny moduli).
  BigNum result = FromU64(1);
  BigNum b = Mod(base, m);
  size_t bits = exp.BitLength();
  for (size_t i = bits; i-- > 0;) {
    result = Mod(Mul(result, result), m);
    if (exp.Bit(i)) result = Mod(Mul(result, b), m);
  }
  return result;
}

BigNum BigNum::Gcd(BigNum a, BigNum b) {
  while (!b.IsZero()) {
    BigNum r = Mod(a, b);
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

Result<BigNum> BigNum::ModInverse(const BigNum& a, const BigNum& m) {
  // Extended Euclid tracking coefficients in signed form:
  // maintain (r, sign, t) with t*a ≡ sign*r (mod m) style bookkeeping.
  // To stay in unsigned arithmetic we track t modulo m with explicit sign.
  BigNum r0 = m;
  BigNum r1 = Mod(a, m);
  BigNum t0;            // 0
  BigNum t1 = FromU64(1);
  bool t0_neg = false, t1_neg = false;

  while (!r1.IsZero()) {
    BigNum q, r2;
    DivMod(r0, r1, &q, &r2);
    // t2 = t0 - q*t1 with sign handling.
    BigNum qt1 = Mul(q, t1);
    BigNum t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      // Same sign: t0 - q*t1 may flip sign.
      if (Cmp(t0, qt1) >= 0) {
        t2 = Sub(t0, qt1);
        t2_neg = t0_neg;
      } else {
        t2 = Sub(qt1, t0);
        t2_neg = !t0_neg;
      }
    } else {
      t2 = Add(t0, qt1);
      t2_neg = t0_neg;
    }
    r0 = std::move(r1);
    r1 = std::move(r2);
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(t2);
    t1_neg = t2_neg;
  }
  if (r0 != FromU64(1)) {
    return Status::CryptoError("ModInverse: arguments not coprime");
  }
  BigNum inv = Mod(t0, m);
  if (t0_neg && !inv.IsZero()) inv = Sub(m, inv);
  return inv;
}

BigNum BigNum::RandomBits(size_t bits,
                          const std::function<uint32_t()>& rng) {
  if (bits == 0) return BigNum();
  BigNum n;
  n.limbs_.assign((bits + 31) / 32, 0);
  for (auto& limb : n.limbs_) limb = rng();
  // Mask to exactly `bits` and force the top bit.
  size_t top_bits = bits % 32;
  if (top_bits != 0) {
    n.limbs_.back() &= (1U << top_bits) - 1;
    n.limbs_.back() |= 1U << (top_bits - 1);
  } else {
    n.limbs_.back() |= 1U << 31;
  }
  n.Normalize();
  return n;
}

bool BigNum::IsProbablePrime(const BigNum& n, int rounds,
                             const std::function<uint32_t()>& rng) {
  if (n.BitLength() <= 6) {
    uint64_t v = n.ToU64();
    if (v < 2) return false;
    for (uint64_t d = 2; d * d <= v; ++d) {
      if (v % d == 0) return false;
    }
    return true;
  }
  if (!n.IsOdd()) return false;
  for (uint32_t p : kSmallPrimes) {
    if (ModU32(n, p) == 0) return n == FromU64(p);
  }

  // n - 1 = d * 2^s with d odd.
  BigNum n_minus_1 = Sub(n, FromU64(1));
  BigNum d = n_minus_1;
  size_t s = 0;
  while (!d.IsOdd()) {
    d = d.ShiftRight(1);
    ++s;
  }

  size_t bits = n.BitLength();
  for (int round = 0; round < rounds; ++round) {
    // Random base in [2, n-2].
    BigNum a;
    do {
      a = RandomBits(bits - 1, rng);
    } while (Cmp(a, FromU64(2)) < 0 || Cmp(a, Sub(n, FromU64(2))) > 0);

    BigNum x = ModExp(a, d, n);
    if (x == FromU64(1) || x == n_minus_1) continue;
    bool composite = true;
    for (size_t i = 0; i + 1 < s; ++i) {
      x = Mod(Mul(x, x), n);
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

BigNum BigNum::GeneratePrime(size_t bits,
                             const std::function<uint32_t()>& rng) {
  assert(bits >= 16);
  while (true) {
    BigNum candidate = RandomBits(bits, rng);
    // Force the two top bits (so p*q has full length) and oddness.
    BigNum top2 = FromU64(3).ShiftLeft(bits - 2);
    candidate = Add(Mod(candidate, top2), top2);
    if (!candidate.IsOdd()) candidate = Add(candidate, FromU64(1));
    // Incremental search from the candidate.
    for (int step = 0; step < 256; ++step) {
      if (candidate.BitLength() != bits) break;
      if (IsProbablePrime(candidate, 12, rng)) return candidate;
      candidate = Add(candidate, FromU64(2));
    }
  }
}

}  // namespace secureblox::crypto
