// HMAC (RFC 2104) over SHA-1 and SHA-256.
//
// HMAC-SHA1 is the keyed-hash authentication scheme evaluated in the paper
// ("HMAC derives a signature by applying SHA-1 to a combination of the
// pairwise shared secret with the message"). HMAC-SHA256 backs the DRBG.
#ifndef SECUREBLOX_CRYPTO_HMAC_H_
#define SECUREBLOX_CRYPTO_HMAC_H_

#include "common/bytes.h"

namespace secureblox::crypto {

/// HMAC-SHA1(key, message) -> 20-byte MAC.
Bytes HmacSha1(const Bytes& key, const Bytes& message);

/// HMAC-SHA256(key, message) -> 32-byte MAC.
Bytes HmacSha256(const Bytes& key, const Bytes& message);

/// Constant-time verification of an HMAC-SHA1 tag.
bool HmacSha1Verify(const Bytes& key, const Bytes& message, const Bytes& mac);

}  // namespace secureblox::crypto

#endif  // SECUREBLOX_CRYPTO_HMAC_H_
