#include "crypto/sha1.h"

#include <cstring>

namespace secureblox::crypto {

namespace {
inline uint32_t Rotl32(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }
}  // namespace

Sha1::Sha1() { Reset(); }

void Sha1::Reset() {
  h_[0] = 0x67452301;
  h_[1] = 0xEFCDAB89;
  h_[2] = 0x98BADCFE;
  h_[3] = 0x10325476;
  h_[4] = 0xC3D2E1F0;
  buffer_len_ = 0;
  total_len_ = 0;
}

void Sha1::ProcessBlock(const uint8_t* block) {
  uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[i * 4]) << 24) |
           (static_cast<uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = Rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    uint32_t f, k;
    if (i < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDC;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6;
    }
    uint32_t tmp = Rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = Rotl32(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1::Update(const uint8_t* data, size_t len) {
  total_len_ += len;
  while (len > 0) {
    size_t take = std::min(len, kBlockSize - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    len -= take;
    if (buffer_len_ == kBlockSize) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
}

Bytes Sha1::Finish() {
  uint64_t bit_len = total_len_ * 8;
  uint8_t pad = 0x80;
  Update(&pad, 1);
  uint8_t zero = 0x00;
  while (buffer_len_ != 56) Update(&zero, 1);
  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  // Bypass total_len_ bookkeeping for the length suffix.
  std::memcpy(buffer_ + buffer_len_, len_bytes, 8);
  ProcessBlock(buffer_);
  buffer_len_ = 0;

  Bytes out(kDigestSize);
  for (int i = 0; i < 5; ++i) {
    out[i * 4] = static_cast<uint8_t>(h_[i] >> 24);
    out[i * 4 + 1] = static_cast<uint8_t>(h_[i] >> 16);
    out[i * 4 + 2] = static_cast<uint8_t>(h_[i] >> 8);
    out[i * 4 + 3] = static_cast<uint8_t>(h_[i]);
  }
  return out;
}

Bytes Sha1Digest(const uint8_t* data, size_t len) {
  Sha1 h;
  h.Update(data, len);
  return h.Finish();
}

Bytes Sha1Digest(const Bytes& data) {
  return Sha1Digest(data.data(), data.size());
}

}  // namespace secureblox::crypto
