#include "dist/runtime.h"

#include <map>

#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "crypto/rsa.h"

namespace secureblox::dist {

using datalog::PredId;
using datalog::Value;
using engine::FactUpdate;
using engine::Tuple;
using net::NodeIndex;

std::string BatchSecurity::Name() const {
  std::string name = policy::AuthSchemeName(auth);
  if (enc == policy::EncScheme::kAes) name += "-AES";
  return name;
}

std::string NodeLabel(NodeIndex index) {
  return "n" + std::to_string(index);
}

Result<size_t> ParseNodeLabel(const std::string& label) {
  if (label.size() < 2 || label[0] != 'n') {
    return Status::InvalidArgument("bad node label '" + label + "'");
  }
  size_t value = 0;
  for (size_t i = 1; i < label.size(); ++i) {
    if (label[i] < '0' || label[i] > '9') {
      return Status::InvalidArgument("bad node label '" + label + "'");
    }
    value = value * 10 + static_cast<size_t>(label[i] - '0');
  }
  return value;
}

Result<std::unique_ptr<NodeRuntime>> NodeRuntime::Create(
    Config config, const std::vector<std::string>& sources) {
  if (config.index >= config.principals.size()) {
    return Status::InvalidArgument("node index outside the principal list");
  }
  std::unique_ptr<NodeRuntime> rt(new NodeRuntime());
  rt->config_ = std::move(config);
  rt->ws_ = std::make_unique<engine::Workspace>();
  // Declarative-networking semantics: distributed protocols negate through
  // recursive predicates with derivation-time meaning (paper §7.1).
  rt->ws_->set_allow_unstratified_negation(true);
  // Anonymous entities (e.g. path extensions) travel by label; the node tag
  // keeps labels globally unique so distinct paths never merge on import.
  // Placement mode instead shares one tag cluster-wide: shards (and the
  // rule firings that mint labels into them) migrate between nodes, so a
  // label must not record which node happened to fire the rule.
  rt->ws_->catalog().SetNodeTag(rt->config_.placement
                                    ? rt->config_.placement_tag
                                    : NodeLabel(rt->config_.index));
  rt->security_.creds = rt->config_.creds;
  rt->ws_->set_user_context(&rt->security_);
  if (rt->config_.fixpoint_threads >= 0) {
    rt->ws_->fixpoint_options().threads = rt->config_.fixpoint_threads;
  }
  if (rt->config_.storage_shards >= 1) {
    // Before Install: relations latch the shard count at first touch.
    rt->ws_->fixpoint_options().shards =
        static_cast<size_t>(rt->config_.storage_shards);
  }

  // Query-serving mode must be set before Install: the program's rules are
  // recorded for the magic-sets front end instead of compiled bottom-up.
  if (rt->config_.query_mode) rt->ws_->set_defer_rules(true);

  SB_ASSIGN_OR_RETURN(generics::ExpansionResult expanded,
                      policy::CompileWithPolicies(rt->ws_.get(), sources));
  SB_RETURN_IF_ERROR(rt->ws_->Install(expanded.program));
  rt->query_ = std::make_unique<engine::QueryEngine>(rt->ws_.get());

  if (rt->config_.placement) {
    if (rt->config_.placed_preds.empty()) {
      return Status::InvalidArgument(
          "placement mode without placed predicates");
    }
    for (const std::string& name : rt->config_.placed_preds) {
      SB_ASSIGN_OR_RETURN(PredId p, rt->ws_->catalog().Lookup(name));
      rt->placement_.placed.insert(p);
    }
    SB_RETURN_IF_ERROR(
        engine::ValidatePlacement(*rt->ws_, rt->placement_.placed));
    rt->shard_map_ = ShardMap::Initial(
        static_cast<uint32_t>(rt->config_.principals.size()));
    rt->placement_.local_node = rt->config_.index;
    rt->placement_.epoch = rt->shard_map_.epoch();
    NodeRuntime* self_ptr = rt.get();
    rt->placement_.owner_of = [self_ptr](size_t shard) {
      return self_ptr->shard_map_.OwnerOf(shard);
    };
    rt->ws_->fixpoint_options().placement = &rt->placement_;
  }

  // Infrastructure facts: who am I, where does everyone live, and the key
  // material the policy builtins read (paper §5.1).
  const std::string& self = rt->config_.creds.principal;
  std::vector<FactUpdate> seed;
  seed.push_back({"self", {Value::Str(self)}});
  seed.push_back({"local_node", {Value::Str(NodeLabel(rt->config_.index))}});
  for (size_t i = 0; i < rt->config_.principals.size(); ++i) {
    seed.push_back({"principal_node",
                    {Value::Str(rt->config_.principals[i]),
                     Value::Str(NodeLabel(static_cast<NodeIndex>(i)))}});
  }
  for (const auto& [peer, pub] : rt->config_.creds.peer_public_keys) {
    seed.push_back({"public_key", {Value::Str(peer), Value::MakeBlob(pub)}});
  }
  for (const auto& [peer, secret] : rt->config_.creds.shared_secrets) {
    seed.push_back({"secret", {Value::Str(peer), Value::MakeBlob(secret)}});
  }
  seed.push_back(
      {"private_key", {Value::MakeBlob(policy::PrivateKeyHandle(self))}});
  auto commit = rt->ws_->Apply(seed);
  if (!commit.ok()) return commit.status();
  return rt;
}

Result<const std::string*> NodeRuntime::PrincipalOf(NodeIndex peer) const {
  if (peer >= config_.principals.size()) {
    return Status::InvalidArgument("unknown peer node " +
                                   std::to_string(peer));
  }
  return &config_.principals[peer];
}

Result<Bytes> NodeRuntime::SealForPeer(const Bytes& raw, NodeIndex peer) const {
  SB_ASSIGN_OR_RETURN(const std::string* peer_principal, PrincipalOf(peer));
  Bytes payload = raw;
  if (config_.batch_security.enc == policy::EncScheme::kAes) {
    auto secret = config_.creds.shared_secrets.find(*peer_principal);
    if (secret == config_.creds.shared_secrets.end()) {
      return Status::CryptoError("no shared secret with " + *peer_principal);
    }
    // Deterministic SIV-style nonce (HMAC of key and plaintext) keeps
    // sealing reproducible across retransmissions.
    Bytes nonce = crypto::HmacSha1(secret->second, payload);
    nonce.resize(crypto::Aes128::kBlockSize);
    SB_ASSIGN_OR_RETURN(payload,
                        crypto::AesCtrEncrypt(secret->second, nonce, payload));
  }
  switch (config_.batch_security.auth) {
    case policy::AuthScheme::kNone:
      break;
    case policy::AuthScheme::kHmac: {
      auto secret = config_.creds.shared_secrets.find(*peer_principal);
      if (secret == config_.creds.shared_secrets.end()) {
        return Status::CryptoError("no shared secret with " + *peer_principal);
      }
      Bytes mac = crypto::HmacSha1(secret->second, payload);
      payload.insert(payload.end(), mac.begin(), mac.end());
      break;
    }
    case policy::AuthScheme::kRsa: {
      SB_ASSIGN_OR_RETURN(Bytes sig,
                          crypto::RsaSign(config_.creds.keypair, payload));
      payload.insert(payload.end(), sig.begin(), sig.end());
      break;
    }
  }
  return payload;
}

Result<Bytes> NodeRuntime::OpenFromPeer(const Bytes& sealed,
                                        NodeIndex peer) const {
  SB_ASSIGN_OR_RETURN(const std::string* peer_principal, PrincipalOf(peer));
  Bytes payload = sealed;
  switch (config_.batch_security.auth) {
    case policy::AuthScheme::kNone:
      break;
    case policy::AuthScheme::kHmac: {
      constexpr size_t kMacLen = 20;
      auto secret = config_.creds.shared_secrets.find(*peer_principal);
      if (secret == config_.creds.shared_secrets.end()) {
        return Status::CryptoError("no shared secret with " + *peer_principal);
      }
      if (payload.size() < kMacLen) {
        return Status::CryptoError("batch shorter than its MAC");
      }
      Bytes mac(payload.end() - kMacLen, payload.end());
      payload.resize(payload.size() - kMacLen);
      if (!crypto::HmacSha1Verify(secret->second, payload, mac)) {
        return Status::CryptoError("batch MAC verification failed (from " +
                                   *peer_principal + ")");
      }
      break;
    }
    case policy::AuthScheme::kRsa: {
      auto pub_it = config_.creds.peer_public_keys.find(*peer_principal);
      if (pub_it == config_.creds.peer_public_keys.end()) {
        return Status::CryptoError("no public key for " + *peer_principal);
      }
      SB_ASSIGN_OR_RETURN(crypto::RsaPublicKey pub,
                          crypto::RsaPublicKey::Deserialize(pub_it->second));
      size_t sig_len = pub.ModulusBytes();
      if (payload.size() < sig_len) {
        return Status::CryptoError("batch shorter than its signature");
      }
      Bytes sig(payload.end() - sig_len, payload.end());
      payload.resize(payload.size() - sig_len);
      if (!crypto::RsaVerify(pub, payload, sig)) {
        return Status::CryptoError(
            "batch signature verification failed (from " + *peer_principal +
            ")");
      }
      break;
    }
  }
  if (config_.batch_security.enc == policy::EncScheme::kAes) {
    auto secret = config_.creds.shared_secrets.find(*peer_principal);
    if (secret == config_.creds.shared_secrets.end()) {
      return Status::CryptoError("no shared secret with " + *peer_principal);
    }
    auto plain = crypto::AesCtrDecrypt(secret->second, payload);
    if (!plain.ok()) return plain.status();
    payload = std::move(plain).value();
  }
  return payload;
}

namespace {

net::WireEntryKind WireKindOf(engine::RemoteDelta::Kind kind) {
  switch (kind) {
    case engine::RemoteDelta::Kind::kBaseInsert:
      return net::WireEntryKind::kBaseInsert;
    case engine::RemoteDelta::Kind::kBaseDelete:
      return net::WireEntryKind::kBaseDelete;
    case engine::RemoteDelta::Kind::kSupportAdd:
      return net::WireEntryKind::kSupportAdd;
    case engine::RemoteDelta::Kind::kSupportDrop:
      return net::WireEntryKind::kSupportDrop;
    case engine::RemoteDelta::Kind::kHandoff:
      return net::WireEntryKind::kHandoff;
  }
  return net::WireEntryKind::kFacts;
}

engine::RemoteDelta::Kind DeltaKindOf(net::WireEntryKind kind) {
  switch (kind) {
    case net::WireEntryKind::kBaseDelete:
      return engine::RemoteDelta::Kind::kBaseDelete;
    case net::WireEntryKind::kSupportAdd:
      return engine::RemoteDelta::Kind::kSupportAdd;
    case net::WireEntryKind::kSupportDrop:
      return engine::RemoteDelta::Kind::kSupportDrop;
    case net::WireEntryKind::kHandoff:
      return engine::RemoteDelta::Kind::kHandoff;
    case net::WireEntryKind::kFacts:
    case net::WireEntryKind::kBaseInsert:
      break;
  }
  return engine::RemoteDelta::Kind::kBaseInsert;
}

}  // namespace

Result<std::vector<NodeRuntime::Outgoing>> NodeRuntime::CollectOutgoing(
    const engine::TxCommit& commit) {
  // Predicates whose first column names the destination node (§5.1 export
  // plus the onion-relay variants).
  static const char* kExportPreds[] = {"export", "anon_export",
                                       "anon_export_back"};
  const datalog::Catalog& catalog = ws_->catalog();
  std::map<NodeIndex, net::WireBatch> batches;
  for (const char* pred_name : kExportPreds) {
    auto pred = catalog.Lookup(pred_name);
    if (!pred.ok()) continue;  // policy without distribution
    auto it = commit.inserted.find(pred.value());
    if (it == commit.inserted.end()) continue;
    for (const Tuple& t : it->second) {
      auto label = catalog.EntityLabel(t[0]);
      if (!label.ok()) continue;
      auto parsed = ParseNodeLabel(label.value());
      // Unaddressable destinations (imported junk labels) are unroutable.
      if (!parsed.ok() || *parsed >= config_.principals.size()) continue;
      size_t dst = *parsed;
      if (dst == config_.index) continue;  // local derivation, not shipped
      net::WireBatch& batch = batches[static_cast<NodeIndex>(dst)];
      batch.src = config_.index;
      batch.dst = static_cast<NodeIndex>(dst);
      net::WireBatch::Entry* entry = nullptr;
      for (auto& e : batch.entries) {
        if (e.pred == pred_name) entry = &e;
      }
      if (entry == nullptr) {
        batch.entries.push_back({pred_name, {}});
        entry = &batch.entries.back();
      }
      entry->tuples.push_back(t);
    }
  }

  std::vector<Outgoing> out;
  for (auto& [dst, batch] : batches) {
    SB_ASSIGN_OR_RETURN(Bytes encoded, net::EncodeBatch(batch, catalog));
    SB_ASSIGN_OR_RETURN(Bytes sealed, SealForPeer(encoded, dst));
    out.push_back({dst, std::move(sealed), batch.TotalTuples()});
  }

  // Placement deltas: one batch per (owner, shard), so a batch either
  // applies wholly at its owner or forwards wholly to the new one.
  if (!commit.remote.empty()) {
    std::map<std::pair<NodeIndex, uint32_t>, net::WireBatch> routed;
    for (const engine::RemoteDelta& d : commit.remote) {
      NodeIndex owner = shard_map_.OwnerOf(d.shard);
      if (owner == config_.index) {
        // Ownership moved back to us between staging and collection —
        // impossible while the map only changes between transactions.
        return Status::Internal("placement delta staged for a local shard");
      }
      net::WireBatch& batch =
          routed[{owner, static_cast<uint32_t>(d.shard)}];
      batch.src = config_.index;
      batch.dst = owner;
      batch.origin = config_.index;
      batch.route_shard = static_cast<uint32_t>(d.shard);
      batch.map_epoch = shard_map_.epoch();
      const std::string& pred_name = catalog.decl(d.pred).name;
      net::WireEntryKind kind = WireKindOf(d.kind);
      net::WireBatch::Entry* entry = nullptr;
      for (auto& e : batch.entries) {
        if (e.pred == pred_name && e.kind == kind) entry = &e;
      }
      if (entry == nullptr) {
        batch.entries.emplace_back();
        entry = &batch.entries.back();
        entry->pred = pred_name;
        entry->kind = kind;
      }
      entry->tuples.push_back(d.tuple);
      if (kind == net::WireEntryKind::kHandoff) {
        entry->supports.push_back(d.support);
        entry->base_flags.push_back(d.is_base ? 1 : 0);
      }
    }
    for (auto& [key, batch] : routed) {
      SB_ASSIGN_OR_RETURN(Bytes encoded, net::EncodeBatch(batch, catalog));
      SB_ASSIGN_OR_RETURN(Bytes sealed, SealForPeer(encoded, key.first));
      out.push_back({key.first, std::move(sealed), batch.TotalTuples(),
                     key.second, shard_map_.epoch()});
    }
  }
  return out;
}

Result<NodeRuntime::ApplyOutcome> NodeRuntime::ApplyAndCollect(
    const std::vector<FactUpdate>& facts,
    const std::vector<FactUpdate>& deletes, bool from_network) {
  // Exclude queries for the duration of the transaction (warm reads walk
  // relation storage the fixpoint mutates). Memo invalidation is free: the
  // commit bumps relation version stamps, which stales the affected answer
  // snapshots.
  std::unique_lock<std::shared_mutex> lock(query_mu_);
  ApplyOutcome outcome;
  auto commit = ws_->Apply(facts, deletes);
  if (!commit.ok()) {
    // Local transactions surface hard errors; anything an untrusted
    // payload provokes (type errors, arity mismatches, violations) is a
    // rejection, the transaction having rolled back.
    if (!from_network &&
        commit.status().code() != StatusCode::kConstraintViolation) {
      return commit.status();
    }
    outcome.accepted = false;
    outcome.reject_reason = commit.status().ToString();
    return outcome;
  }
  outcome.num_derived = commit->num_derived;
  SB_ASSIGN_OR_RETURN(outcome.outgoing, CollectOutgoing(*commit));
  return outcome;
}

Result<NodeRuntime::ApplyOutcome> NodeRuntime::InsertLocal(
    const std::vector<FactUpdate>& facts) {
  return ApplyAndCollect(facts, {}, /*from_network=*/false);
}

Result<NodeRuntime::ApplyOutcome> NodeRuntime::ApplyLocal(
    const std::vector<FactUpdate>& inserts,
    const std::vector<FactUpdate>& deletes) {
  return ApplyAndCollect(inserts, deletes, /*from_network=*/false);
}

Result<std::vector<engine::Tuple>> NodeRuntime::Query(
    const engine::QueryGoal& goal) {
  {
    // Warm path: epoch-validated memo hit under the reader lock — many
    // point queries proceed concurrently between transactions.
    std::shared_lock<std::shared_mutex> lock(query_mu_);
    auto warm = query_->TryWarm(goal);
    if (warm.has_value()) return std::move(*warm);
  }
  // Cold (or staled) goal: installing and seeding the slice runs a
  // transaction, so take the writer lock and re-run from scratch.
  std::unique_lock<std::shared_mutex> lock(query_mu_);
  return query_->Query(goal);
}

Result<NodeRuntime::ApplyOutcome> NodeRuntime::DeliverMessage(
    const Bytes& payload, NodeIndex src) {
  SB_ASSIGN_OR_RETURN(BatchOutcome batch, DeliverBatch({{src, payload}}));
  ApplyOutcome outcome;
  outcome.accepted = batch.results[0].accepted;
  outcome.reject_reason = batch.results[0].reject_reason;
  outcome.outgoing = std::move(batch.outgoing);
  outcome.num_derived = batch.num_derived;
  return outcome;
}

Result<NodeRuntime::BatchOutcome> NodeRuntime::DeliverBatch(
    const std::vector<SealedDelivery>& batch) {
  // Seal verification is per payload against its own source: one hostile
  // source cannot poison the seals of its peers.
  std::vector<OpenedDelivery> opened(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    opened[i].src = batch[i].src;
    auto plain = OpenFromPeer(batch[i].payload, batch[i].src);
    if (!plain.ok()) {
      opened[i].auth_ok = false;
      opened[i].error = plain.status().ToString();
    } else {
      opened[i].opened = std::move(plain).value();
    }
  }
  return DeliverOpened(opened);
}

Result<NodeRuntime::BatchOutcome> NodeRuntime::DeliverOpened(
    const std::vector<OpenedDelivery>& batch) {
  // Exclusive against queries: decoding interns entity labels into the
  // catalog and ApplyDecodedRange commits transactions.
  std::unique_lock<std::shared_mutex> lock(query_mu_);
  BatchOutcome out;
  out.results.resize(batch.size());
  std::vector<DecodedPayload> decoded;
  for (size_t i = 0; i < batch.size(); ++i) {
    const OpenedDelivery& d = batch[i];
    if (!d.auth_ok) {
      ++stats_.batches_rejected_auth;
      out.results[i] = {false, d.error};
      continue;
    }
    auto wire = net::DecodeBatch(d.opened, &ws_->catalog());
    if (!wire.ok()) {
      ++stats_.batches_rejected_parse;
      out.results[i] = {false, wire.status().ToString()};
      continue;
    }
    if (wire->dst != config_.index) {
      ++stats_.batches_rejected_parse;
      out.results[i] = {false, "misrouted batch (dst " +
                                   std::to_string(wire->dst) + " at node " +
                                   std::to_string(config_.index) + ")"};
      continue;
    }
    if (wire->route_shard != net::kNoShard) {
      if (!config_.placement) {
        ++stats_.batches_rejected_routing;
        out.results[i] = {false,
                          "shard-routed batch at a non-placement node"};
        continue;
      }
      NodeIndex owner = shard_map_.OwnerOf(wire->route_shard);
      if (owner != config_.index) {
        // The sender held a stale map (or lied): re-seal hop-by-hop and
        // forward to the current owner, preserving the origin. The batch
        // is not dropped — the owner's deferred-retry machinery absorbs
        // any ordering skew the extra hop introduces.
        net::WireBatch forward = std::move(*wire);
        forward.src = config_.index;
        forward.dst = owner;
        forward.map_epoch = shard_map_.epoch();
        auto encoded = net::EncodeBatch(forward, ws_->catalog());
        if (!encoded.ok()) {
          out.results[i] = {false, encoded.status().ToString()};
          continue;
        }
        auto sealed = SealForPeer(encoded.value(), owner);
        if (!sealed.ok()) {
          out.results[i] = {false, sealed.status().ToString()};
          continue;
        }
        ++stats_.batches_rerouted;
        out.results[i] = {true, ""};
        // Forwarded payloads count as accepted (not committed here, but
        // not rejected): callers gate outgoing sends on acceptance.
        ++out.accepted_payloads;
        out.outgoing.push_back({owner, std::move(sealed).value(),
                                forward.TotalTuples(), forward.route_shard,
                                shard_map_.epoch()});
        continue;
      }
    }
    DecodedPayload dec;
    dec.index = i;
    bool bad_entry = false;
    for (const auto& entry : wire->entries) {
      if (entry.kind == net::WireEntryKind::kFacts) {
        for (const Tuple& t : entry.tuples) {
          dec.facts.push_back({entry.pred, t});
        }
        continue;
      }
      // Placement delta entries are only meaningful on a shard-routed
      // batch in placement mode; anywhere else they are a forgery.
      if (!config_.placement || wire->route_shard == net::kNoShard) {
        ++stats_.batches_rejected_routing;
        out.results[i] = {false, "placement delta entry on an unrouted or "
                                 "non-placement delivery"};
        bad_entry = true;
        break;
      }
      const bool handoff = entry.kind == net::WireEntryKind::kHandoff;
      for (size_t j = 0; j < entry.tuples.size(); ++j) {
        engine::RemoteOp op;
        op.kind = DeltaKindOf(entry.kind);
        op.pred = entry.pred;
        op.values.assign(entry.tuples[j].begin(), entry.tuples[j].end());
        if (handoff) {
          op.support = entry.supports[j];
          op.is_base = entry.base_flags[j] != 0;
          ++stats_.handoff_rows_in;
        }
        dec.remote.push_back(std::move(op));
      }
    }
    if (bad_entry) continue;
    decoded.push_back(std::move(dec));
  }
  if (!decoded.empty()) {
    SB_RETURN_IF_ERROR(ApplyDecodedRange(decoded, 0, decoded.size(), &out));
  }
  return out;
}

Status NodeRuntime::ApplyDecodedRange(
    const std::vector<DecodedPayload>& decoded, size_t lo, size_t hi,
    BatchOutcome* out) {
  std::vector<FactUpdate> facts;
  std::vector<engine::RemoteOp> remote;
  for (size_t i = lo; i < hi; ++i) {
    facts.insert(facts.end(), decoded[i].facts.begin(),
                 decoded[i].facts.end());
    remote.insert(remote.end(), decoded[i].remote.begin(),
                  decoded[i].remote.end());
  }
  auto commit = ws_->Apply(facts, {}, remote);
  if (commit.ok()) {
    ++stats_.delivery_txns;
    if (hi - lo > 1) stats_.coalesced_payloads += hi - lo;
    for (size_t i = lo; i < hi; ++i) {
      out->results[decoded[i].index] = {true, ""};
      ++stats_.batches_accepted;
      ++out->accepted_payloads;
    }
    ++out->transactions;
    out->num_derived += commit->num_derived;
    SB_ASSIGN_OR_RETURN(std::vector<Outgoing> outgoing,
                        CollectOutgoing(*commit));
    for (auto& o : outgoing) out->outgoing.push_back(std::move(o));
    return Status::OK();
  }
  // Untrusted input: every failure the payloads provoke (constraint
  // violation, type error, arity mismatch) is a rejection of those
  // payloads, the transaction having rolled back.
  if (hi - lo == 1) {
    ++stats_.batches_rejected_constraint;
    out->results[decoded[lo].index] = {false, commit.status().ToString()};
    return Status::OK();
  }
  // Bisect: isolate the poisoned source(s) instead of aborting peers.
  ++stats_.bisect_splits;
  size_t mid = lo + (hi - lo) / 2;
  SB_RETURN_IF_ERROR(ApplyDecodedRange(decoded, lo, mid, out));
  return ApplyDecodedRange(decoded, mid, hi, out);
}

// -- placement ----------------------------------------------------------------

void NodeRuntime::SetShardMap(const ShardMap& map) {
  std::unique_lock<std::shared_mutex> lock(query_mu_);
  shard_map_ = map;
  placement_.epoch = map.epoch();
}

Result<std::vector<NodeRuntime::Outgoing>> NodeRuntime::ExtractHandoff(
    const ShardMap& new_map) {
  if (!config_.placement) {
    return Status::InvalidArgument("ExtractHandoff without placement mode");
  }
  std::unique_lock<std::shared_mutex> lock(query_mu_);
  const size_t num_shards = ws_->fixpoint_options().shards;
  const datalog::Catalog& catalog = ws_->catalog();
  // One handoff batch per (new owner, shard), mirroring CollectOutgoing's
  // routing granularity.
  std::map<std::pair<NodeIndex, uint32_t>, net::WireBatch> batches;
  for (size_t shard = 0; shard < num_shards; ++shard) {
    if (shard_map_.OwnerOf(shard) != config_.index) continue;
    NodeIndex new_owner = new_map.OwnerOf(shard);
    if (new_owner == config_.index) continue;
    for (PredId pred : placement_.placed) {
      SB_ASSIGN_OR_RETURN(std::vector<engine::RemoteDelta> rows,
                          ws_->DetachShard(pred, shard));
      if (rows.empty()) continue;
      net::WireBatch& batch =
          batches[{new_owner, static_cast<uint32_t>(shard)}];
      batch.src = config_.index;
      batch.dst = new_owner;
      batch.origin = config_.index;
      batch.route_shard = static_cast<uint32_t>(shard);
      batch.map_epoch = new_map.epoch();
      net::WireBatch::Entry entry;
      entry.pred = catalog.decl(pred).name;
      entry.kind = net::WireEntryKind::kHandoff;
      for (engine::RemoteDelta& d : rows) {
        entry.tuples.push_back(std::move(d.tuple));
        entry.supports.push_back(d.support);
        entry.base_flags.push_back(d.is_base ? 1 : 0);
      }
      batch.entries.push_back(std::move(entry));
    }
  }
  std::vector<Outgoing> out;
  for (auto& [key, batch] : batches) {
    SB_ASSIGN_OR_RETURN(Bytes encoded, net::EncodeBatch(batch, catalog));
    SB_ASSIGN_OR_RETURN(Bytes sealed, SealForPeer(encoded, key.first));
    out.push_back({key.first, std::move(sealed), batch.TotalTuples(),
                   key.second, new_map.epoch()});
  }
  return out;
}

}  // namespace secureblox::dist
