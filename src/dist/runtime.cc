#include "dist/runtime.h"

#include <map>

#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "crypto/rsa.h"

namespace secureblox::dist {

using datalog::PredId;
using datalog::Value;
using engine::FactUpdate;
using engine::Tuple;
using net::NodeIndex;

std::string BatchSecurity::Name() const {
  std::string name = policy::AuthSchemeName(auth);
  if (enc == policy::EncScheme::kAes) name += "-AES";
  return name;
}

std::string NodeLabel(NodeIndex index) {
  return "n" + std::to_string(index);
}

Result<size_t> ParseNodeLabel(const std::string& label) {
  if (label.size() < 2 || label[0] != 'n') {
    return Status::InvalidArgument("bad node label '" + label + "'");
  }
  size_t value = 0;
  for (size_t i = 1; i < label.size(); ++i) {
    if (label[i] < '0' || label[i] > '9') {
      return Status::InvalidArgument("bad node label '" + label + "'");
    }
    value = value * 10 + static_cast<size_t>(label[i] - '0');
  }
  return value;
}

Result<std::unique_ptr<NodeRuntime>> NodeRuntime::Create(
    Config config, const std::vector<std::string>& sources) {
  if (config.index >= config.principals.size()) {
    return Status::InvalidArgument("node index outside the principal list");
  }
  std::unique_ptr<NodeRuntime> rt(new NodeRuntime());
  rt->config_ = std::move(config);
  rt->ws_ = std::make_unique<engine::Workspace>();
  // Declarative-networking semantics: distributed protocols negate through
  // recursive predicates with derivation-time meaning (paper §7.1).
  rt->ws_->set_allow_unstratified_negation(true);
  // Anonymous entities (e.g. path extensions) travel by label; the node tag
  // keeps labels globally unique so distinct paths never merge on import.
  rt->ws_->catalog().SetNodeTag(NodeLabel(rt->config_.index));
  rt->security_.creds = rt->config_.creds;
  rt->ws_->set_user_context(&rt->security_);
  if (rt->config_.fixpoint_threads >= 0) {
    rt->ws_->fixpoint_options().threads = rt->config_.fixpoint_threads;
  }
  if (rt->config_.storage_shards >= 1) {
    // Before Install: relations latch the shard count at first touch.
    rt->ws_->fixpoint_options().shards =
        static_cast<size_t>(rt->config_.storage_shards);
  }

  // Query-serving mode must be set before Install: the program's rules are
  // recorded for the magic-sets front end instead of compiled bottom-up.
  if (rt->config_.query_mode) rt->ws_->set_defer_rules(true);

  SB_ASSIGN_OR_RETURN(generics::ExpansionResult expanded,
                      policy::CompileWithPolicies(rt->ws_.get(), sources));
  SB_RETURN_IF_ERROR(rt->ws_->Install(expanded.program));
  rt->query_ = std::make_unique<engine::QueryEngine>(rt->ws_.get());

  // Infrastructure facts: who am I, where does everyone live, and the key
  // material the policy builtins read (paper §5.1).
  const std::string& self = rt->config_.creds.principal;
  std::vector<FactUpdate> seed;
  seed.push_back({"self", {Value::Str(self)}});
  seed.push_back({"local_node", {Value::Str(NodeLabel(rt->config_.index))}});
  for (size_t i = 0; i < rt->config_.principals.size(); ++i) {
    seed.push_back({"principal_node",
                    {Value::Str(rt->config_.principals[i]),
                     Value::Str(NodeLabel(static_cast<NodeIndex>(i)))}});
  }
  for (const auto& [peer, pub] : rt->config_.creds.peer_public_keys) {
    seed.push_back({"public_key", {Value::Str(peer), Value::MakeBlob(pub)}});
  }
  for (const auto& [peer, secret] : rt->config_.creds.shared_secrets) {
    seed.push_back({"secret", {Value::Str(peer), Value::MakeBlob(secret)}});
  }
  seed.push_back(
      {"private_key", {Value::MakeBlob(policy::PrivateKeyHandle(self))}});
  auto commit = rt->ws_->Apply(seed);
  if (!commit.ok()) return commit.status();
  return rt;
}

Result<const std::string*> NodeRuntime::PrincipalOf(NodeIndex peer) const {
  if (peer >= config_.principals.size()) {
    return Status::InvalidArgument("unknown peer node " +
                                   std::to_string(peer));
  }
  return &config_.principals[peer];
}

Result<Bytes> NodeRuntime::SealForPeer(const Bytes& raw, NodeIndex peer) const {
  SB_ASSIGN_OR_RETURN(const std::string* peer_principal, PrincipalOf(peer));
  Bytes payload = raw;
  if (config_.batch_security.enc == policy::EncScheme::kAes) {
    auto secret = config_.creds.shared_secrets.find(*peer_principal);
    if (secret == config_.creds.shared_secrets.end()) {
      return Status::CryptoError("no shared secret with " + *peer_principal);
    }
    // Deterministic SIV-style nonce (HMAC of key and plaintext) keeps
    // sealing reproducible across retransmissions.
    Bytes nonce = crypto::HmacSha1(secret->second, payload);
    nonce.resize(crypto::Aes128::kBlockSize);
    SB_ASSIGN_OR_RETURN(payload,
                        crypto::AesCtrEncrypt(secret->second, nonce, payload));
  }
  switch (config_.batch_security.auth) {
    case policy::AuthScheme::kNone:
      break;
    case policy::AuthScheme::kHmac: {
      auto secret = config_.creds.shared_secrets.find(*peer_principal);
      if (secret == config_.creds.shared_secrets.end()) {
        return Status::CryptoError("no shared secret with " + *peer_principal);
      }
      Bytes mac = crypto::HmacSha1(secret->second, payload);
      payload.insert(payload.end(), mac.begin(), mac.end());
      break;
    }
    case policy::AuthScheme::kRsa: {
      SB_ASSIGN_OR_RETURN(Bytes sig,
                          crypto::RsaSign(config_.creds.keypair, payload));
      payload.insert(payload.end(), sig.begin(), sig.end());
      break;
    }
  }
  return payload;
}

Result<Bytes> NodeRuntime::OpenFromPeer(const Bytes& sealed,
                                        NodeIndex peer) const {
  SB_ASSIGN_OR_RETURN(const std::string* peer_principal, PrincipalOf(peer));
  Bytes payload = sealed;
  switch (config_.batch_security.auth) {
    case policy::AuthScheme::kNone:
      break;
    case policy::AuthScheme::kHmac: {
      constexpr size_t kMacLen = 20;
      auto secret = config_.creds.shared_secrets.find(*peer_principal);
      if (secret == config_.creds.shared_secrets.end()) {
        return Status::CryptoError("no shared secret with " + *peer_principal);
      }
      if (payload.size() < kMacLen) {
        return Status::CryptoError("batch shorter than its MAC");
      }
      Bytes mac(payload.end() - kMacLen, payload.end());
      payload.resize(payload.size() - kMacLen);
      if (!crypto::HmacSha1Verify(secret->second, payload, mac)) {
        return Status::CryptoError("batch MAC verification failed (from " +
                                   *peer_principal + ")");
      }
      break;
    }
    case policy::AuthScheme::kRsa: {
      auto pub_it = config_.creds.peer_public_keys.find(*peer_principal);
      if (pub_it == config_.creds.peer_public_keys.end()) {
        return Status::CryptoError("no public key for " + *peer_principal);
      }
      SB_ASSIGN_OR_RETURN(crypto::RsaPublicKey pub,
                          crypto::RsaPublicKey::Deserialize(pub_it->second));
      size_t sig_len = pub.ModulusBytes();
      if (payload.size() < sig_len) {
        return Status::CryptoError("batch shorter than its signature");
      }
      Bytes sig(payload.end() - sig_len, payload.end());
      payload.resize(payload.size() - sig_len);
      if (!crypto::RsaVerify(pub, payload, sig)) {
        return Status::CryptoError(
            "batch signature verification failed (from " + *peer_principal +
            ")");
      }
      break;
    }
  }
  if (config_.batch_security.enc == policy::EncScheme::kAes) {
    auto secret = config_.creds.shared_secrets.find(*peer_principal);
    if (secret == config_.creds.shared_secrets.end()) {
      return Status::CryptoError("no shared secret with " + *peer_principal);
    }
    auto plain = crypto::AesCtrDecrypt(secret->second, payload);
    if (!plain.ok()) return plain.status();
    payload = std::move(plain).value();
  }
  return payload;
}

Result<std::vector<NodeRuntime::Outgoing>> NodeRuntime::CollectOutgoing(
    const engine::TxCommit& commit) {
  // Predicates whose first column names the destination node (§5.1 export
  // plus the onion-relay variants).
  static const char* kExportPreds[] = {"export", "anon_export",
                                       "anon_export_back"};
  const datalog::Catalog& catalog = ws_->catalog();
  std::map<NodeIndex, net::WireBatch> batches;
  for (const char* pred_name : kExportPreds) {
    auto pred = catalog.Lookup(pred_name);
    if (!pred.ok()) continue;  // policy without distribution
    auto it = commit.inserted.find(pred.value());
    if (it == commit.inserted.end()) continue;
    for (const Tuple& t : it->second) {
      auto label = catalog.EntityLabel(t[0]);
      if (!label.ok()) continue;
      auto parsed = ParseNodeLabel(label.value());
      // Unaddressable destinations (imported junk labels) are unroutable.
      if (!parsed.ok() || *parsed >= config_.principals.size()) continue;
      size_t dst = *parsed;
      if (dst == config_.index) continue;  // local derivation, not shipped
      net::WireBatch& batch = batches[static_cast<NodeIndex>(dst)];
      batch.src = config_.index;
      batch.dst = static_cast<NodeIndex>(dst);
      net::WireBatch::Entry* entry = nullptr;
      for (auto& e : batch.entries) {
        if (e.pred == pred_name) entry = &e;
      }
      if (entry == nullptr) {
        batch.entries.push_back({pred_name, {}});
        entry = &batch.entries.back();
      }
      entry->tuples.push_back(t);
    }
  }

  std::vector<Outgoing> out;
  for (auto& [dst, batch] : batches) {
    SB_ASSIGN_OR_RETURN(Bytes encoded, net::EncodeBatch(batch, catalog));
    SB_ASSIGN_OR_RETURN(Bytes sealed, SealForPeer(encoded, dst));
    out.push_back({dst, std::move(sealed), batch.TotalTuples()});
  }
  return out;
}

Result<NodeRuntime::ApplyOutcome> NodeRuntime::ApplyAndCollect(
    const std::vector<FactUpdate>& facts,
    const std::vector<FactUpdate>& deletes, bool from_network) {
  // Exclude queries for the duration of the transaction (warm reads walk
  // relation storage the fixpoint mutates). Memo invalidation is free: the
  // commit bumps relation version stamps, which stales the affected answer
  // snapshots.
  std::unique_lock<std::shared_mutex> lock(query_mu_);
  ApplyOutcome outcome;
  auto commit = ws_->Apply(facts, deletes);
  if (!commit.ok()) {
    // Local transactions surface hard errors; anything an untrusted
    // payload provokes (type errors, arity mismatches, violations) is a
    // rejection, the transaction having rolled back.
    if (!from_network &&
        commit.status().code() != StatusCode::kConstraintViolation) {
      return commit.status();
    }
    outcome.accepted = false;
    outcome.reject_reason = commit.status().ToString();
    return outcome;
  }
  outcome.num_derived = commit->num_derived;
  SB_ASSIGN_OR_RETURN(outcome.outgoing, CollectOutgoing(*commit));
  return outcome;
}

Result<NodeRuntime::ApplyOutcome> NodeRuntime::InsertLocal(
    const std::vector<FactUpdate>& facts) {
  return ApplyAndCollect(facts, {}, /*from_network=*/false);
}

Result<NodeRuntime::ApplyOutcome> NodeRuntime::ApplyLocal(
    const std::vector<FactUpdate>& inserts,
    const std::vector<FactUpdate>& deletes) {
  return ApplyAndCollect(inserts, deletes, /*from_network=*/false);
}

Result<std::vector<engine::Tuple>> NodeRuntime::Query(
    const engine::QueryGoal& goal) {
  {
    // Warm path: epoch-validated memo hit under the reader lock — many
    // point queries proceed concurrently between transactions.
    std::shared_lock<std::shared_mutex> lock(query_mu_);
    auto warm = query_->TryWarm(goal);
    if (warm.has_value()) return std::move(*warm);
  }
  // Cold (or staled) goal: installing and seeding the slice runs a
  // transaction, so take the writer lock and re-run from scratch.
  std::unique_lock<std::shared_mutex> lock(query_mu_);
  return query_->Query(goal);
}

Result<NodeRuntime::ApplyOutcome> NodeRuntime::DeliverMessage(
    const Bytes& payload, NodeIndex src) {
  SB_ASSIGN_OR_RETURN(BatchOutcome batch, DeliverBatch({{src, payload}}));
  ApplyOutcome outcome;
  outcome.accepted = batch.results[0].accepted;
  outcome.reject_reason = batch.results[0].reject_reason;
  outcome.outgoing = std::move(batch.outgoing);
  outcome.num_derived = batch.num_derived;
  return outcome;
}

Result<NodeRuntime::BatchOutcome> NodeRuntime::DeliverBatch(
    const std::vector<SealedDelivery>& batch) {
  // Seal verification is per payload against its own source: one hostile
  // source cannot poison the seals of its peers.
  std::vector<OpenedDelivery> opened(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    opened[i].src = batch[i].src;
    auto plain = OpenFromPeer(batch[i].payload, batch[i].src);
    if (!plain.ok()) {
      opened[i].auth_ok = false;
      opened[i].error = plain.status().ToString();
    } else {
      opened[i].opened = std::move(plain).value();
    }
  }
  return DeliverOpened(opened);
}

Result<NodeRuntime::BatchOutcome> NodeRuntime::DeliverOpened(
    const std::vector<OpenedDelivery>& batch) {
  // Exclusive against queries: decoding interns entity labels into the
  // catalog and ApplyDecodedRange commits transactions.
  std::unique_lock<std::shared_mutex> lock(query_mu_);
  BatchOutcome out;
  out.results.resize(batch.size());
  std::vector<DecodedPayload> decoded;
  for (size_t i = 0; i < batch.size(); ++i) {
    const OpenedDelivery& d = batch[i];
    if (!d.auth_ok) {
      ++stats_.batches_rejected_auth;
      out.results[i] = {false, d.error};
      continue;
    }
    auto wire = net::DecodeBatch(d.opened, &ws_->catalog());
    if (!wire.ok()) {
      ++stats_.batches_rejected_parse;
      out.results[i] = {false, wire.status().ToString()};
      continue;
    }
    if (wire->dst != config_.index) {
      ++stats_.batches_rejected_parse;
      out.results[i] = {false, "misrouted batch (dst " +
                                   std::to_string(wire->dst) + " at node " +
                                   std::to_string(config_.index) + ")"};
      continue;
    }
    DecodedPayload dec;
    dec.index = i;
    for (const auto& entry : wire->entries) {
      for (const Tuple& t : entry.tuples) {
        dec.facts.push_back({entry.pred, t});
      }
    }
    decoded.push_back(std::move(dec));
  }
  if (!decoded.empty()) {
    SB_RETURN_IF_ERROR(ApplyDecodedRange(decoded, 0, decoded.size(), &out));
  }
  return out;
}

Status NodeRuntime::ApplyDecodedRange(
    const std::vector<DecodedPayload>& decoded, size_t lo, size_t hi,
    BatchOutcome* out) {
  std::vector<FactUpdate> facts;
  for (size_t i = lo; i < hi; ++i) {
    facts.insert(facts.end(), decoded[i].facts.begin(),
                 decoded[i].facts.end());
  }
  auto commit = ws_->Apply(facts);
  if (commit.ok()) {
    ++stats_.delivery_txns;
    if (hi - lo > 1) stats_.coalesced_payloads += hi - lo;
    for (size_t i = lo; i < hi; ++i) {
      out->results[decoded[i].index] = {true, ""};
      ++stats_.batches_accepted;
      ++out->accepted_payloads;
    }
    ++out->transactions;
    out->num_derived += commit->num_derived;
    SB_ASSIGN_OR_RETURN(std::vector<Outgoing> outgoing,
                        CollectOutgoing(*commit));
    for (auto& o : outgoing) out->outgoing.push_back(std::move(o));
    return Status::OK();
  }
  // Untrusted input: every failure the payloads provoke (constraint
  // violation, type error, arity mismatch) is a rejection of those
  // payloads, the transaction having rolled back.
  if (hi - lo == 1) {
    ++stats_.batches_rejected_constraint;
    out->results[decoded[lo].index] = {false, commit.status().ToString()};
    return Status::OK();
  }
  // Bisect: isolate the poisoned source(s) instead of aborting peers.
  ++stats_.bisect_splits;
  size_t mid = lo + (hi - lo) / 2;
  SB_RETURN_IF_ERROR(ApplyDecodedRange(decoded, lo, mid, out));
  return ApplyDecodedRange(decoded, mid, hi, out);
}

}  // namespace secureblox::dist
