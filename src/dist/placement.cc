#include "dist/placement.h"

#include <algorithm>

namespace secureblox::dist {

namespace {

/// Virtual points per member. More points smooth the per-node share at
/// the cost of a larger ring; 32 keeps the max/mean shard imbalance under
/// ~30% for small clusters, plenty for the 60%-of-replicated memory gate.
constexpr int kVirtualNodes = 32;

/// FNV-1a over a small integer key, finished with a 64-bit avalanche
/// (splitmix64) so consecutive inputs scatter across the whole ring.
uint64_t Mix(uint64_t x) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (i * 8)) & 0xff;
    h *= 0x100000001b3ull;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

}  // namespace

ShardMap ShardMap::Initial(uint32_t num_nodes) {
  ShardMap map;
  for (uint32_t n = 0; n < num_nodes; ++n) map.members_.push_back(n);
  map.RebuildRing();
  map.epoch_ = 1;
  return map;
}

void ShardMap::RebuildRing() {
  ring_.clear();
  ring_.reserve(members_.size() * kVirtualNodes);
  for (uint32_t node : members_) {
    for (int v = 0; v < kVirtualNodes; ++v) {
      // Distinct point streams per node: node in the high word, virtual
      // index in the low.
      uint64_t point = Mix((static_cast<uint64_t>(node) << 32) |
                           static_cast<uint64_t>(v) | (1ull << 63));
      ring_.emplace_back(point, node);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

uint32_t ShardMap::OwnerOf(size_t shard) const {
  uint64_t point = Mix(static_cast<uint64_t>(shard));
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(point, uint32_t{0}));
  if (it == ring_.end()) it = ring_.begin();  // wrap
  return it->second;
}

bool ShardMap::HasMember(uint32_t node) const {
  return std::binary_search(members_.begin(), members_.end(), node);
}

void ShardMap::Join(uint32_t node) {
  if (HasMember(node)) return;
  members_.insert(
      std::upper_bound(members_.begin(), members_.end(), node), node);
  RebuildRing();
  ++epoch_;
}

void ShardMap::Leave(uint32_t node) {
  if (!HasMember(node) || members_.size() <= 1) return;
  members_.erase(std::find(members_.begin(), members_.end(), node));
  RebuildRing();
  ++epoch_;
}

}  // namespace secureblox::dist
