#include "dist/cluster.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"

namespace secureblox::dist {

using engine::FactUpdate;
using net::NodeIndex;

double SimCluster::Metrics::MeanPerNodeKb() const {
  if (node_bytes_sent.empty()) return 0;
  double total = 0;
  for (uint64_t b : node_bytes_sent) total += static_cast<double>(b);
  return total / 1024.0 / static_cast<double>(node_bytes_sent.size());
}

double SimCluster::Metrics::MeanTxDurationMs() const {
  if (transactions.empty()) return 0;
  double total = 0;
  for (const TxRecord& tx : transactions) total += tx.end_s - tx.start_s;
  return total * 1000.0 / static_cast<double>(transactions.size());
}

Result<std::unique_ptr<SimCluster>> SimCluster::Create(Config config) {
  if (config.num_nodes == 0) {
    return Status::InvalidArgument("cluster needs at least one node");
  }
  std::unique_ptr<SimCluster> cluster(new SimCluster());
  std::vector<std::string> principals;
  for (size_t i = 0; i < config.num_nodes; ++i) {
    principals.push_back("p" + std::to_string(i));
  }
  policy::CredentialAuthority authority(principals, config.credentials);
  for (size_t i = 0; i < config.num_nodes; ++i) {
    NodeRuntime::Config ncfg;
    ncfg.index = static_cast<NodeIndex>(i);
    ncfg.principals = principals;
    SB_ASSIGN_OR_RETURN(ncfg.creds, authority.IssueFor(principals[i]));
    ncfg.batch_security = config.batch_security;
    SB_ASSIGN_OR_RETURN(std::unique_ptr<NodeRuntime> node,
                        NodeRuntime::Create(std::move(ncfg), config.sources));
    cluster->nodes_.push_back(std::move(node));
  }
  cluster->net_ = net::SimNet(config.net);
  cluster->config_ = std::move(config);
  return cluster;
}

void SimCluster::ScheduleInsert(NodeIndex node,
                                std::vector<FactUpdate> facts) {
  scheduled_.push_back({node, std::move(facts)});
}

Result<SimCluster::Metrics> SimCluster::Run() {
  Metrics metrics;
  metrics.node_convergence_s.assign(nodes_.size(), 0.0);
  std::vector<double> available(nodes_.size(), 0.0);

  // Run one transaction on `node` no earlier than `ready_s`, in simulated
  // time; compute cost is the measured wall-clock time of the call
  // (sealing included) scaled by compute_scale.
  auto run_tx = [&](NodeIndex node, double ready_s, bool is_delivery,
                    auto&& fn) -> Status {
    double start = std::max(ready_s, available[node]);
    auto t0 = std::chrono::steady_clock::now();
    Result<NodeRuntime::ApplyOutcome> outcome = fn();
    if (!outcome.ok()) {
      if (is_delivery) {
        // A malformed or hostile batch must not take down the cluster
        // loop: count the rejection and keep the node serving — but log
        // it, since this also catches local engine failures.
        SB_LOG_STREAM(Warning) << "node " << node << ": rejected batch: "
                               << outcome.status().ToString();
        ++metrics.rejected_batches;
        return Status::OK();
      }
      return outcome.status();
    }
    double wall_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    double end = start + wall_s * config_.compute_scale;
    available[node] = end;
    metrics.transactions.push_back({node, outcome->accepted, start, end});
    if (outcome->accepted) {
      metrics.node_convergence_s[node] = end;
      for (auto& out : outcome->outgoing) {
        net_.Send(node, out.dst, std::move(out.payload), end);
      }
    } else if (is_delivery) {
      ++metrics.rejected_batches;
    }
    return Status::OK();
  };

  for (auto& [node, facts] : scheduled_) {
    auto& batch = facts;
    NodeIndex n = node;
    SB_RETURN_IF_ERROR(run_tx(n, 0.0, /*is_delivery=*/false, [&] {
      return nodes_[n]->InsertLocal(batch);
    }));
  }
  scheduled_.clear();

  uint64_t guard = 0;
  while (auto delivery = net_.PopNext()) {
    if (++guard > 50000000) {
      return Status::Internal("simulated cluster did not quiesce");
    }
    NodeIndex dst = delivery->dst;
    SB_RETURN_IF_ERROR(
        run_tx(dst, delivery->time_s, /*is_delivery=*/true, [&] {
          return nodes_[dst]->DeliverMessage(delivery->payload,
                                             delivery->src);
        }));
  }

  metrics.fixpoint_latency_s = *std::max_element(
      metrics.node_convergence_s.begin(), metrics.node_convergence_s.end());
  metrics.total_messages = net_.total_messages();
  metrics.total_bytes = net_.total_bytes();
  for (size_t i = 0; i < nodes_.size(); ++i) {
    metrics.node_bytes_sent.push_back(
        net_.bytes_sent(static_cast<NodeIndex>(i)));
  }
  return metrics;
}

}  // namespace secureblox::dist
