#include "dist/cluster.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <limits>

#include "common/logging.h"

namespace secureblox::dist {

using engine::FactUpdate;
using net::NodeIndex;

double SimCluster::Metrics::MeanPerNodeKb() const {
  if (node_bytes_sent.empty()) return 0;
  double total = 0;
  for (uint64_t b : node_bytes_sent) total += static_cast<double>(b);
  return total / 1024.0 / static_cast<double>(node_bytes_sent.size());
}

double SimCluster::Metrics::MeanTxDurationMs() const {
  if (transactions.empty()) return 0;
  double total = 0;
  for (const TxRecord& tx : transactions) total += tx.end_s - tx.start_s;
  return total * 1000.0 / static_cast<double>(transactions.size());
}

Result<std::unique_ptr<SimCluster>> SimCluster::Create(Config config) {
  if (config.num_nodes == 0) {
    return Status::InvalidArgument("cluster needs at least one node");
  }
  std::unique_ptr<SimCluster> cluster(new SimCluster());
  std::vector<std::string> principals;
  for (size_t i = 0; i < config.num_nodes; ++i) {
    principals.push_back("p" + std::to_string(i));
  }
  policy::CredentialAuthority authority(principals, config.credentials);
  for (size_t i = 0; i < config.num_nodes; ++i) {
    NodeRuntime::Config ncfg;
    ncfg.index = static_cast<NodeIndex>(i);
    ncfg.principals = principals;
    SB_ASSIGN_OR_RETURN(ncfg.creds, authority.IssueFor(principals[i]));
    ncfg.batch_security = config.batch_security;
    ncfg.placement = config.placement;
    ncfg.placed_preds = config.placed_preds;
    ncfg.storage_shards = config.storage_shards;
    SB_ASSIGN_OR_RETURN(std::unique_ptr<NodeRuntime> node,
                        NodeRuntime::Create(std::move(ncfg), config.sources));
    cluster->nodes_.push_back(std::move(node));
  }
  if (config.placement) {
    size_t members = config.initial_members == 0 ? config.num_nodes
                                                 : config.initial_members;
    if (members > config.num_nodes) {
      return Status::InvalidArgument("initial_members exceeds num_nodes");
    }
    cluster->map_ = ShardMap::Initial(static_cast<uint32_t>(members));
    for (auto& node : cluster->nodes_) node->SetShardMap(cluster->map_);
  }
  cluster->net_ = net::SimNet(config.net);
  cluster->config_ = std::move(config);
  return cluster;
}

void SimCluster::ScheduleInsert(NodeIndex node,
                                std::vector<FactUpdate> facts) {
  scheduled_.push_back({node, std::move(facts), {}, 0.0});
}

void SimCluster::ScheduleUpdate(NodeIndex node,
                                std::vector<FactUpdate> inserts,
                                std::vector<FactUpdate> deletes,
                                double at_s) {
  scheduled_.push_back({node, std::move(inserts), std::move(deletes), at_s});
}

void SimCluster::ScheduleJoin(NodeIndex node, double at_s) {
  scheduled_.push_back(
      {node, {}, {}, at_s, ScheduledTx::Kind::kJoin});
}

void SimCluster::ScheduleLeave(NodeIndex node, double at_s) {
  scheduled_.push_back(
      {node, {}, {}, at_s, ScheduledTx::Kind::kLeave});
}

Result<SimCluster::Metrics> SimCluster::Run() {
  Metrics metrics;
  metrics.node_convergence_s.assign(nodes_.size(), 0.0);
  std::vector<double> available(nodes_.size(), 0.0);
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Deliveries that have arrived but not yet been applied, per destination
  // (arrival order), plus their sender-declared tuple totals.
  std::vector<std::deque<net::SimNet::Delivery>> pending(nodes_.size());
  std::vector<size_t> pending_tuples(nodes_.size(), 0);
  const size_t cap = config_.max_batch_tuples;  // 0 = unbounded

  // When node n's queued batch starts applying. A full batch closes at
  // the arrival of the message that reached the tuple cap; otherwise the
  // node fires once it is free and the first message is in — or, with a
  // batch delay, `max_batch_delay_s` after the first arrival.
  auto fire_time = [&](size_t n) -> double {
    const std::deque<net::SimNet::Delivery>& q = pending[n];
    double first = q.front().time_s;
    if (cap != 0 && pending_tuples[n] >= cap) {
      size_t acc = 0;
      for (const net::SimNet::Delivery& d : q) {
        acc += std::max<size_t>(1, d.tuple_hint);
        if (acc >= cap) return std::max(available[n], d.time_s);
      }
    }
    double t = std::max(available[n], first);
    if (config_.max_batch_delay_s > 0) {
      t = std::max(available[n], first + config_.max_batch_delay_s);
    }
    return t;
  };

  // Account one finished transaction: charge the measured wall-clock
  // compute (sealing and verification included, rejected work too) to the
  // node's simulated time and ship its outgoing messages at commit time.
  auto finish_tx = [&](NodeIndex node, double start, double wall_s,
                       bool accepted, bool is_delivery, size_t num_payloads,
                       size_t num_tuples,
                       std::vector<NodeRuntime::Outgoing> outgoing) {
    double duration = wall_s * config_.compute_scale;
    if (duration <= 0) duration = 1e-9;  // clock granularity floor
    double end = start + duration;
    available[node] = end;
    metrics.transactions.push_back({node, accepted, is_delivery, start, end,
                                    num_payloads, num_tuples});
    if (accepted) {
      metrics.node_convergence_s[node] = end;
      for (auto& out : outgoing) {
        net_.Send(node, out.dst, std::move(out.payload), end,
                  out.num_tuples);
      }
    }
  };

  std::stable_sort(
      scheduled_.begin(), scheduled_.end(),
      [](const ScheduledTx& a, const ScheduledTx& b) { return a.at_s < b.at_s; });
  size_t next_scheduled = 0;
  uint64_t guard = 0;

  while (true) {
    if (++guard > 50000000) {
      return Status::Internal("simulated cluster did not quiesce");
    }
    double t_sched = next_scheduled < scheduled_.size()
                         ? scheduled_[next_scheduled].at_s
                         : kInf;
    double t_fire = kInf;
    size_t fire_dst = 0;
    uint64_t fire_seq = 0;
    for (size_t n = 0; n < pending.size(); ++n) {
      if (pending[n].empty()) continue;
      double t = fire_time(n);
      uint64_t seq = pending[n].front().seq;
      if (t < t_fire || (t == t_fire && seq < fire_seq)) {
        t_fire = t;
        fire_dst = n;
        fire_seq = seq;
      }
    }
    double t_net = net_.PeekNextTime().value_or(kInf);
    if (t_sched == kInf && t_fire == kInf && t_net == kInf) break;

    // Arrivals land first so a message arriving at (or before) a batch's
    // start instant still coalesces into it.
    if (t_net <= std::min(t_sched, t_fire)) {
      auto d = net_.PopNext();
      pending_tuples[d->dst] += std::max<size_t>(1, d->tuple_hint);
      pending[d->dst].push_back(std::move(*d));
      continue;
    }

    if (t_sched <= t_fire) {
      ScheduledTx& tx = scheduled_[next_scheduled++];
      if (tx.kind != ScheduledTx::Kind::kTx) {
        // Membership change. The new map is computed once; every old
        // owner of a departing shard runs a handoff transaction (snapshot
        // extraction + sealing, charged to its simulated clock, shipped
        // through the network model), then the map activates everywhere —
        // an idealized synchronous membership service. In-flight batches
        // sealed under the old epoch land at old owners and re-route.
        if (!config_.placement) {
          return Status::InvalidArgument(
              "membership event without placement mode");
        }
        ShardMap new_map = map_;
        if (tx.kind == ScheduledTx::Kind::kJoin) {
          new_map.Join(tx.node);
        } else {
          new_map.Leave(tx.node);
        }
        if (new_map.epoch() != map_.epoch()) {
          ++metrics.membership_changes;
          for (size_t n = 0; n < nodes_.size(); ++n) {
            auto t0 = std::chrono::steady_clock::now();
            auto handoff = nodes_[n]->ExtractHandoff(new_map);
            double wall_s = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
            if (!handoff.ok()) return handoff.status();
            if (handoff->empty()) continue;
            size_t rows = 0;
            for (const auto& o : *handoff) rows += o.num_tuples;
            metrics.handoff_transfers += handoff->size();
            metrics.handoff_rows += rows;
            double start = std::max(tx.at_s, available[n]);
            finish_tx(static_cast<NodeIndex>(n), start, wall_s,
                      /*accepted=*/true, /*is_delivery=*/false,
                      handoff->size(), rows, std::move(*handoff));
            metrics.transactions.back().is_handoff = true;
          }
          map_ = new_map;
          for (auto& node : nodes_) node->SetShardMap(map_);
        }
        continue;
      }
      double start = std::max(tx.at_s, available[tx.node]);
      auto t0 = std::chrono::steady_clock::now();
      auto outcome = nodes_[tx.node]->ApplyLocal(tx.inserts, tx.deletes);
      double wall_s = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      // Local failures surface: the workload itself is broken.
      if (!outcome.ok()) return outcome.status();
      finish_tx(tx.node, start, wall_s, outcome->accepted,
                /*is_delivery=*/false, 0, 0, std::move(outcome->outgoing));
      continue;
    }

    // Coalesce queued messages for fire_dst — across sources — into one
    // multi-source delivery transaction (whole messages, first always
    // taken, stop once the tuple cap is reached).
    std::vector<NodeRuntime::SealedDelivery> batch;
    size_t tuples = 0;
    while (!pending[fire_dst].empty()) {
      if (!batch.empty() && cap != 0 && tuples >= cap) break;
      net::SimNet::Delivery& d = pending[fire_dst].front();
      size_t hint = std::max<size_t>(1, d.tuple_hint);
      batch.push_back({d.src, std::move(d.payload)});
      tuples += hint;
      pending_tuples[fire_dst] -= hint;
      pending[fire_dst].pop_front();
    }

    double start = std::max(t_fire, available[fire_dst]);
    auto t0 = std::chrono::steady_clock::now();
    auto outcome =
        nodes_[fire_dst]->DeliverBatch(batch);
    double wall_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    NodeIndex dst = static_cast<NodeIndex>(fire_dst);
    if (!outcome.ok()) {
      // A malformed or hostile batch must not take down the cluster loop:
      // count the rejections and keep the node serving — but log it, since
      // this also catches local engine failures.
      SB_LOG_STREAM(Warning) << "node " << dst << ": rejected batch: "
                             << outcome.status().ToString();
      metrics.rejected_batches += batch.size();
      finish_tx(dst, start, wall_s, /*accepted=*/false, /*is_delivery=*/true,
                batch.size(), tuples, {});
      continue;
    }
    metrics.rejected_batches += batch.size() - outcome->accepted_payloads;
    ++metrics.delivery_transactions;
    if (batch.size() > 1) metrics.coalesced_messages += batch.size();
    finish_tx(dst, start, wall_s, outcome->accepted_payloads > 0,
              /*is_delivery=*/true, batch.size(), tuples,
              std::move(outcome->outgoing));
  }
  scheduled_.clear();

  metrics.fixpoint_latency_s = *std::max_element(
      metrics.node_convergence_s.begin(), metrics.node_convergence_s.end());
  metrics.total_messages = net_.total_messages();
  metrics.total_bytes = net_.total_bytes();
  for (size_t i = 0; i < nodes_.size(); ++i) {
    metrics.node_bytes_sent.push_back(
        net_.bytes_sent(static_cast<NodeIndex>(i)));
    metrics.rerouted_batches += nodes_[i]->stats().batches_rerouted;
  }
  return metrics;
}

}  // namespace secureblox::dist
