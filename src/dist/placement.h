// ShardMap: the cluster-wide shard-ownership map (dist half of the
// placement seam; engine half in engine/placement.h).
//
// Ownership is assigned by consistent hashing: each member node projects
// a fixed set of virtual points onto a 64-bit ring, and shard s belongs
// to the first virtual point clockwise of hash(s). Join/leave therefore
// move only the shards adjacent to the affected node's points (expected
// 1/n of the key space) instead of reshuffling everything — the handoff
// volume on membership change is proportional to the data actually
// changing owner.
//
// Every membership change bumps `epoch`. Batches carry the sender's
// epoch; a receiver holding a newer map re-routes mis-addressed payloads
// to the current owner rather than dropping them (dist/runtime.cc), so
// the map may be updated node-by-node without a stop-the-world barrier.
// The map is deliberately pred-agnostic: shard s of *every* placed
// relation lives on the same owner, so one payload routes atomically.
#ifndef SECUREBLOX_DIST_PLACEMENT_H_
#define SECUREBLOX_DIST_PLACEMENT_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace secureblox::dist {

class ShardMap {
 public:
  ShardMap() = default;
  /// Initial map over nodes {0, .., num_nodes-1} at epoch 1.
  static ShardMap Initial(uint32_t num_nodes);

  /// Owning node of a shard index. The map must be non-empty.
  uint32_t OwnerOf(size_t shard) const;

  /// Membership changes; each bumps the epoch. Joining an existing member
  /// or removing the last/unknown member is a no-op (epoch still bumps on
  /// actual change only).
  void Join(uint32_t node);
  void Leave(uint32_t node);

  uint64_t epoch() const { return epoch_; }
  const std::vector<uint32_t>& members() const { return members_; }
  bool HasMember(uint32_t node) const;

 private:
  void RebuildRing();

  uint64_t epoch_ = 0;
  std::vector<uint32_t> members_;  // sorted
  /// (point on ring, owning node), sorted by point.
  std::vector<std::pair<uint64_t, uint32_t>> ring_;
};

}  // namespace secureblox::dist

#endif  // SECUREBLOX_DIST_PLACEMENT_H_
