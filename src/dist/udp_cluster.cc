#include "dist/udp_cluster.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "common/logging.h"

namespace secureblox::dist {

using engine::FactUpdate;
using net::NodeIndex;

Result<std::unique_ptr<UdpCluster>> UdpCluster::Create(Config config) {
  if (config.num_nodes == 0) {
    return Status::InvalidArgument("cluster needs at least one node");
  }
  std::unique_ptr<UdpCluster> cluster(new UdpCluster());
  std::vector<std::string> principals;
  for (size_t i = 0; i < config.num_nodes; ++i) {
    principals.push_back("p" + std::to_string(i));
  }
  policy::CredentialAuthority authority(principals, config.credentials);
  for (size_t i = 0; i < config.num_nodes; ++i) {
    NodeRuntime::Config ncfg;
    ncfg.index = static_cast<NodeIndex>(i);
    ncfg.principals = principals;
    SB_ASSIGN_OR_RETURN(ncfg.creds, authority.IssueFor(principals[i]));
    ncfg.batch_security = config.batch_security;
    SB_ASSIGN_OR_RETURN(std::unique_ptr<NodeRuntime> node,
                        NodeRuntime::Create(std::move(ncfg), config.sources));
    cluster->nodes_.push_back(std::move(node));
  }
  // Bind everyone on an ephemeral port, then fill in the address book.
  std::vector<net::UdpEndpoint> endpoints(config.num_nodes,
                                          {"127.0.0.1", 0});
  for (size_t i = 0; i < config.num_nodes; ++i) {
    SB_ASSIGN_OR_RETURN(
        net::UdpTransport sock,
        net::UdpTransport::Bind(static_cast<NodeIndex>(i), endpoints));
    cluster->transports_.push_back(std::move(sock));
  }
  for (size_t i = 0; i < config.num_nodes; ++i) {
    for (size_t j = 0; j < config.num_nodes; ++j) {
      cluster->transports_[i].SetEndpoint(
          static_cast<NodeIndex>(j),
          {"127.0.0.1", cluster->transports_[j].local_port()});
    }
  }
  cluster->config_ = std::move(config);
  return cluster;
}

Status UdpCluster::SendOutgoing(
    NodeIndex src, const std::vector<NodeRuntime::Outgoing>& outgoing) {
  for (const auto& out : outgoing) {
    // Datagram envelope: the sender's index (sealed payloads do not reveal
    // it before verification) and its declared tuple count (batch sizing
    // only — never trusted for semantics).
    ByteWriter w;
    w.PutU32(src);
    w.PutU32(static_cast<uint32_t>(out.num_tuples));
    w.PutRaw(out.payload);
    SB_RETURN_IF_ERROR(transports_[src].Send(out.dst, w.Take()));
  }
  return Status::OK();
}

Status UdpCluster::Insert(NodeIndex node,
                          const std::vector<FactUpdate>& facts) {
  SB_ASSIGN_OR_RETURN(NodeRuntime::ApplyOutcome outcome,
                      nodes_[node]->InsertLocal(facts));
  if (!outcome.accepted) {
    return Status::ConstraintViolation(outcome.reject_reason);
  }
  return SendOutgoing(node, outcome.outgoing);
}

Result<UdpCluster::Stats> UdpCluster::Run() {
  // One verified (or verdict-carrying) datagram handed from the receive
  // thread to the apply loop. Node stats stay with the apply thread.
  struct RxItem {
    NodeIndex dst = 0;
    bool envelope_ok = true;
    size_t tuple_hint = 1;
    NodeRuntime::OpenedDelivery opened;
  };
  std::mutex mu;
  std::condition_variable cv;
  std::deque<RxItem> rx_queue;
  std::atomic<bool> stop{false};
  Status rx_status = Status::OK();

  // Receive thread: drain every socket, verify seals against the claimed
  // source (OpenFromPeer is const — credentials are immutable after
  // Create), enqueue opened payloads for the apply loop.
  std::thread rx([&] {
    while (!stop.load(std::memory_order_acquire)) {
      bool any = false;
      for (size_t i = 0; i < nodes_.size(); ++i) {
        while (true) {
          Result<std::optional<Bytes>> datagram = transports_[i].Poll();
          if (!datagram.ok()) {
            std::lock_guard<std::mutex> lock(mu);
            rx_status = datagram.status();
            stop.store(true, std::memory_order_release);
            cv.notify_all();
            return;
          }
          if (!datagram->has_value()) break;
          any = true;
          RxItem item;
          item.dst = static_cast<NodeIndex>(i);
          ByteReader r(**datagram);
          auto src = r.GetU32();
          auto hint = r.GetU32();
          if (!src.ok() || !hint.ok() || *src >= nodes_.size()) {
            item.envelope_ok = false;
          } else {
            item.tuple_hint = std::max<uint32_t>(1, *hint);
            item.opened.src = static_cast<NodeIndex>(*src);
            auto payload =
                r.GetRaw((*datagram)->size() - 2 * sizeof(uint32_t));
            if (!payload.ok()) {
              item.envelope_ok = false;
            } else {
              auto plain = nodes_[i]->OpenFromPeer(*payload, item.opened.src);
              if (!plain.ok()) {
                item.opened.auth_ok = false;
                item.opened.error = plain.status().ToString();
              } else {
                item.opened.opened = std::move(plain).value();
              }
            }
          }
          {
            std::lock_guard<std::mutex> lock(mu);
            rx_queue.push_back(std::move(item));
          }
          cv.notify_all();
        }
      }
      if (!any) {
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    }
  });

  Status status = Status::OK();
  const size_t cap = config_.max_batch_tuples;  // 0 = unbounded
  int idle = 0;
  while (idle < config_.idle_sweeps && status.ok()) {
    std::vector<RxItem> items;
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait_for(lock, std::chrono::milliseconds(config_.poll_timeout_ms),
                  [&] { return !rx_queue.empty() || !rx_status.ok(); });
      if (!rx_status.ok()) {
        status = rx_status;
        break;
      }
      while (!rx_queue.empty()) {
        items.push_back(std::move(rx_queue.front()));
        rx_queue.pop_front();
      }
    }
    if (items.empty()) {
      ++idle;
      continue;
    }
    idle = 0;
    // Coalesce per destination (arrival order preserved), chunked by the
    // tuple cap; a hostile or malformed datagram must not take down the
    // loop — it is counted and the node keeps serving.
    for (size_t dst = 0; dst < nodes_.size() && status.ok(); ++dst) {
      std::vector<NodeRuntime::OpenedDelivery> group;
      size_t tuples = 0;
      auto flush = [&]() -> Status {
        if (group.empty()) return Status::OK();
        auto outcome = nodes_[dst]->DeliverOpened(group);
        if (!outcome.ok()) {
          // Leave a trail: this path also catches local engine failures
          // (budget, internal errors), not just attacker garbage.
          SB_LOG_STREAM(Warning)
              << "node " << dst << ": rejected batch: "
              << outcome.status().ToString();
          stats_.rejected += group.size();
        } else {
          ++stats_.apply_transactions;
          if (group.size() > 1) stats_.coalesced_messages += group.size();
          stats_.messages_delivered += group.size();
          stats_.rejected += group.size() - outcome->accepted_payloads;
          SB_RETURN_IF_ERROR(
              SendOutgoing(static_cast<NodeIndex>(dst), outcome->outgoing));
        }
        group.clear();
        tuples = 0;
        return Status::OK();
      };
      for (RxItem& item : items) {
        if (item.dst != dst) continue;
        if (!item.envelope_ok) {
          ++stats_.rejected;
          continue;
        }
        if (!group.empty() && cap != 0 && tuples >= cap) {
          status = flush();
          if (!status.ok()) break;
        }
        group.push_back(std::move(item.opened));
        tuples += item.tuple_hint;
      }
      if (status.ok()) status = flush();
    }
  }

  stop.store(true, std::memory_order_release);
  cv.notify_all();
  rx.join();
  SB_RETURN_IF_ERROR(status);
  return stats_;
}

}  // namespace secureblox::dist
