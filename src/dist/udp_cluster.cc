#include "dist/udp_cluster.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "common/logging.h"
#include "net/wire.h"

namespace secureblox::dist {

using engine::FactUpdate;
using net::NodeIndex;

Result<std::unique_ptr<UdpCluster>> UdpCluster::Create(Config config) {
  if (config.num_nodes == 0) {
    return Status::InvalidArgument("cluster needs at least one node");
  }
  std::unique_ptr<UdpCluster> cluster(new UdpCluster());
  std::vector<std::string> principals;
  for (size_t i = 0; i < config.num_nodes; ++i) {
    principals.push_back("p" + std::to_string(i));
  }
  policy::CredentialAuthority authority(principals, config.credentials);
  for (size_t i = 0; i < config.num_nodes; ++i) {
    NodeRuntime::Config ncfg;
    ncfg.index = static_cast<NodeIndex>(i);
    ncfg.principals = principals;
    SB_ASSIGN_OR_RETURN(ncfg.creds, authority.IssueFor(principals[i]));
    ncfg.batch_security = config.batch_security;
    ncfg.placement = config.placement;
    ncfg.placed_preds = config.placed_preds;
    ncfg.storage_shards = config.storage_shards;
    SB_ASSIGN_OR_RETURN(std::unique_ptr<NodeRuntime> node,
                        NodeRuntime::Create(std::move(ncfg), config.sources));
    cluster->nodes_.push_back(std::move(node));
  }
  // Bind everyone on an ephemeral port, then fill in the address book.
  std::vector<net::UdpEndpoint> endpoints(config.num_nodes,
                                          {"127.0.0.1", 0});
  for (size_t i = 0; i < config.num_nodes; ++i) {
    SB_ASSIGN_OR_RETURN(
        net::UdpTransport sock,
        net::UdpTransport::Bind(static_cast<NodeIndex>(i), endpoints));
    cluster->transports_.push_back(std::move(sock));
  }
  for (size_t i = 0; i < config.num_nodes; ++i) {
    for (size_t j = 0; j < config.num_nodes; ++j) {
      cluster->transports_[i].SetEndpoint(
          static_cast<NodeIndex>(j),
          {"127.0.0.1", cluster->transports_[j].local_port()});
    }
  }
  cluster->config_ = std::move(config);
  return cluster;
}

Status UdpCluster::SendOutgoing(
    NodeIndex src, const std::vector<NodeRuntime::Outgoing>& outgoing) {
  for (const auto& out : outgoing) {
    // Datagram envelope: the sender's index (sealed payloads do not reveal
    // it before verification), its declared tuple count, and the shard
    // routing hints (target shard + map-epoch low word; net::kNoShard for
    // exports). Everything here is plaintext outside the seal — receivers
    // verify the values against the decoded payload and never let an
    // unverified envelope steer batching or routing.
    ByteWriter w;
    w.PutU32(src);
    w.PutU32(static_cast<uint32_t>(out.num_tuples));
    w.PutU32(out.shard);
    w.PutU32(static_cast<uint32_t>(out.map_epoch));
    w.PutRaw(out.payload);
    SB_RETURN_IF_ERROR(transports_[src].Send(out.dst, w.Take()));
  }
  return Status::OK();
}

Status UdpCluster::Insert(NodeIndex node,
                          const std::vector<FactUpdate>& facts) {
  SB_ASSIGN_OR_RETURN(NodeRuntime::ApplyOutcome outcome,
                      nodes_[node]->InsertLocal(facts));
  if (!outcome.accepted) {
    return Status::ConstraintViolation(outcome.reject_reason);
  }
  return SendOutgoing(node, outcome.outgoing);
}

Result<UdpCluster::Stats> UdpCluster::Run() {
  using Clock = std::chrono::steady_clock;
  // One verified (or verdict-carrying) datagram handed from the receive
  // thread to the apply loop. Node stats stay with the apply thread.
  struct RxItem {
    NodeIndex dst = 0;
    bool envelope_ok = true;
    /// Envelope hint contradicted the decoded payload (trust-boundary
    /// violation: the hint rides outside the seal).
    bool hint_mismatch = false;
    /// Envelope shard/epoch hints contradicted the sealed batch header.
    bool routing_mismatch = false;
    /// Tuples actually carried, from the structural parse of the opened
    /// payload — never the sender's claim. Unverifiable payloads (failed
    /// seal or unparseable plaintext) count 1, pending their rejection.
    size_t tuple_count = 1;
    Clock::time_point arrival{};
    NodeRuntime::OpenedDelivery opened;
  };
  std::mutex mu;
  std::condition_variable cv;
  std::deque<RxItem> rx_queue;
  std::atomic<bool> stop{false};
  Status rx_status = Status::OK();

  // Receive thread: drain every socket, verify seals against the claimed
  // source (OpenFromPeer is const — credentials are immutable after
  // Create), validate the envelope's tuple-count hint against the opened
  // payload, and enqueue opened payloads for the apply loop.
  std::thread rx([&] {
    bool final_sweep = false;
    while (!final_sweep) {
      // One more full sweep once stop is requested: datagrams already
      // sitting in the socket buffers at shutdown get verified and handed
      // over, so the apply side's final drain flushes them instead of the
      // OS dropping them with the sockets.
      final_sweep = stop.load(std::memory_order_acquire);
      bool any = false;
      for (size_t i = 0; i < nodes_.size(); ++i) {
        while (true) {
          Result<std::optional<Bytes>> datagram = transports_[i].Poll();
          if (!datagram.ok()) {
            std::lock_guard<std::mutex> lock(mu);
            rx_status = datagram.status();
            stop.store(true, std::memory_order_release);
            cv.notify_all();
            return;
          }
          if (!datagram->has_value()) break;
          any = true;
          RxItem item;
          item.dst = static_cast<NodeIndex>(i);
          item.arrival = Clock::now();
          ByteReader r(**datagram);
          auto src = r.GetU32();
          auto hint = r.GetU32();
          auto shard_hint = r.GetU32();
          auto epoch_hint = r.GetU32();
          if (!src.ok() || !hint.ok() || !shard_hint.ok() ||
              !epoch_hint.ok() || *src >= nodes_.size()) {
            item.envelope_ok = false;
          } else {
            item.opened.src = static_cast<NodeIndex>(*src);
            auto payload =
                r.GetRaw((*datagram)->size() - 4 * sizeof(uint32_t));
            if (!payload.ok()) {
              item.envelope_ok = false;
            } else {
              auto plain = nodes_[i]->OpenFromPeer(*payload, item.opened.src);
              if (!plain.ok()) {
                item.opened.auth_ok = false;
                item.opened.error = plain.status().ToString();
              } else {
                item.opened.opened = std::move(plain).value();
                // Clamp the batching weight to the decoded truth: an
                // oversized hint must not burst the tuple cap and a zero
                // hint must not starve it. A payload the structural parse
                // rejects keeps weight 1 and is thrown out by the apply
                // path's full decode.
                auto actual = net::CountBatchTuples(item.opened.opened);
                if (actual.ok()) {
                  item.tuple_count = std::max<size_t>(1, *actual);
                  item.hint_mismatch = *hint != *actual;
                }
                // Same canary for the routing hints: the sealed header is
                // what routes; a lying envelope only gets counted.
                auto routing = net::PeekBatchRouting(item.opened.opened);
                if (routing.ok()) {
                  item.routing_mismatch =
                      *shard_hint != routing->route_shard ||
                      *epoch_hint !=
                          static_cast<uint32_t>(routing->map_epoch);
                }
              }
            }
          }
          {
            std::lock_guard<std::mutex> lock(mu);
            rx_queue.push_back(std::move(item));
          }
          cv.notify_all();
        }
      }
      if (!any && !final_sweep) {
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    }
  });

  // Apply loop: coalesce opened payloads per destination (arrival order
  // preserved) into multi-source transactions. A batch closes when the
  // tuple cap fills; a non-full batch is held open `max_batch_delay_s`
  // after its first datagram's arrival (0 = apply on the next sweep) —
  // the same §5.2 semantics SimCluster implements in simulated time.
  struct PendingBatch {
    std::vector<NodeRuntime::OpenedDelivery> group;
    size_t tuples = 0;
    Clock::time_point first{};
  };
  std::vector<PendingBatch> pending(nodes_.size());
  Status status = Status::OK();
  const size_t cap = config_.max_batch_tuples;  // 0 = unbounded
  const auto delay = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(
          std::max(0.0, config_.max_batch_delay_s)));

  auto flush = [&](size_t dst) -> Status {
    PendingBatch& b = pending[dst];
    if (b.group.empty()) return Status::OK();
    auto outcome = nodes_[dst]->DeliverOpened(b.group);
    Status forward = Status::OK();
    if (!outcome.ok()) {
      // Leave a trail: this path also catches local engine failures
      // (budget, internal errors), not just attacker garbage.
      SB_LOG_STREAM(Warning)
          << "node " << dst << ": rejected batch: "
          << outcome.status().ToString();
      stats_.rejected += b.group.size();
    } else {
      ++stats_.apply_transactions;
      if (b.group.size() > 1) stats_.coalesced_messages += b.group.size();
      stats_.messages_delivered += b.group.size();
      stats_.rejected += b.group.size() - outcome->accepted_payloads;
      forward = SendOutgoing(static_cast<NodeIndex>(dst),
                             outcome->outgoing);
    }
    // The batch was consumed either way: a send failure must not leave
    // it queued for a re-delivery (the facts already committed).
    b.group.clear();
    b.tuples = 0;
    return forward;
  };

  int idle = 0;
  while (idle < config_.idle_sweeps && status.ok()) {
    std::vector<RxItem> items;
    {
      std::unique_lock<std::mutex> lock(mu);
      // Wake for traffic, or in time for the earliest held batch's
      // deadline so a quiet network cannot stall a non-full batch past
      // its delay.
      auto wait = std::chrono::milliseconds(config_.poll_timeout_ms);
      if (delay.count() > 0) {
        const auto now = Clock::now();
        for (const PendingBatch& b : pending) {
          if (b.group.empty()) continue;
          auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
              b.first + delay - now);
          wait = std::clamp(until, std::chrono::milliseconds(0), wait);
        }
      }
      cv.wait_for(lock, wait,
                  [&] { return !rx_queue.empty() || !rx_status.ok(); });
      if (!rx_status.ok()) {
        status = rx_status;
        break;
      }
      while (!rx_queue.empty()) {
        items.push_back(std::move(rx_queue.front()));
        rx_queue.pop_front();
      }
    }

    // Enqueue new arrivals; a hostile or malformed datagram must not take
    // down the loop — it is counted and the node keeps serving.
    for (RxItem& item : items) {
      if (!item.envelope_ok) {
        ++stats_.rejected;
        continue;
      }
      if (item.hint_mismatch) {
        // The payload may still verify and apply — only the unsealed
        // envelope lied — but the lie is counted where operators look.
        ++stats_.rejected;
        ++stats_.hint_mismatches;
      }
      if (item.routing_mismatch) {
        ++stats_.rejected;
        ++stats_.routing_mismatches;
      }
      PendingBatch& b = pending[item.dst];
      if (!b.group.empty() && cap != 0 && b.tuples >= cap) {
        status = flush(item.dst);
        if (!status.ok()) break;
      }
      if (b.group.empty()) b.first = item.arrival;
      b.group.push_back(std::move(item.opened));
      b.tuples += item.tuple_count;
    }
    if (!status.ok()) break;

    // Close ready batches: full ones immediately, non-full ones once the
    // delay from their first arrival has elapsed (or right away with no
    // delay configured).
    const auto now = Clock::now();
    bool flushed = false;
    for (size_t dst = 0; dst < pending.size() && status.ok(); ++dst) {
      PendingBatch& b = pending[dst];
      if (b.group.empty()) continue;
      bool full = cap != 0 && b.tuples >= cap;
      if (full || delay.count() == 0 || now - b.first >= delay) {
        flushed = true;
        status = flush(dst);
      }
    }
    if (!status.ok()) break;

    bool holding = std::any_of(
        pending.begin(), pending.end(),
        [](const PendingBatch& b) { return !b.group.empty(); });
    if (items.empty() && !flushed && !holding) {
      ++idle;
    } else {
      idle = 0;
    }
  }

  stop.store(true, std::memory_order_release);
  cv.notify_all();
  rx.join();

  // The receive thread verifies seals off the apply loop, so it may have
  // enqueued payloads between this loop's last sweep and the join —
  // residue left in rx_queue here is a verified message silently dropped
  // at shutdown. Fold it into the held batches first: everything still
  // pending at stop time is *flushed, not dropped*.
  std::deque<RxItem> residue;
  {
    std::lock_guard<std::mutex> lock(mu);
    residue.swap(rx_queue);
  }
  for (RxItem& item : residue) {
    if (!item.envelope_ok) {
      ++stats_.rejected;
      continue;
    }
    if (item.hint_mismatch) {
      ++stats_.rejected;
      ++stats_.hint_mismatches;
    }
    if (item.routing_mismatch) {
      ++stats_.rejected;
      ++stats_.routing_mismatches;
    }
    PendingBatch& b = pending[item.dst];
    if (b.group.empty()) b.first = item.arrival;
    b.group.push_back(std::move(item.opened));
    b.tuples += item.tuple_count;
  }

  // Drain everything still held open — unconditionally, so an error on
  // one destination's path never silently drops another destination's
  // verified payloads. The first error is preserved.
  for (size_t dst = 0; dst < pending.size(); ++dst) {
    Status drained = flush(dst);
    if (status.ok()) status = std::move(drained);
  }
  SB_RETURN_IF_ERROR(status);
  return stats_;
}

}  // namespace secureblox::dist
