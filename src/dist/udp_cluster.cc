#include "dist/udp_cluster.h"

#include "common/logging.h"

namespace secureblox::dist {

using engine::FactUpdate;
using net::NodeIndex;

Result<std::unique_ptr<UdpCluster>> UdpCluster::Create(Config config) {
  if (config.num_nodes == 0) {
    return Status::InvalidArgument("cluster needs at least one node");
  }
  std::unique_ptr<UdpCluster> cluster(new UdpCluster());
  std::vector<std::string> principals;
  for (size_t i = 0; i < config.num_nodes; ++i) {
    principals.push_back("p" + std::to_string(i));
  }
  policy::CredentialAuthority authority(principals, config.credentials);
  for (size_t i = 0; i < config.num_nodes; ++i) {
    NodeRuntime::Config ncfg;
    ncfg.index = static_cast<NodeIndex>(i);
    ncfg.principals = principals;
    SB_ASSIGN_OR_RETURN(ncfg.creds, authority.IssueFor(principals[i]));
    ncfg.batch_security = config.batch_security;
    SB_ASSIGN_OR_RETURN(std::unique_ptr<NodeRuntime> node,
                        NodeRuntime::Create(std::move(ncfg), config.sources));
    cluster->nodes_.push_back(std::move(node));
  }
  // Bind everyone on an ephemeral port, then fill in the address book.
  std::vector<net::UdpEndpoint> endpoints(config.num_nodes,
                                          {"127.0.0.1", 0});
  for (size_t i = 0; i < config.num_nodes; ++i) {
    SB_ASSIGN_OR_RETURN(
        net::UdpTransport sock,
        net::UdpTransport::Bind(static_cast<NodeIndex>(i), endpoints));
    cluster->transports_.push_back(std::move(sock));
  }
  for (size_t i = 0; i < config.num_nodes; ++i) {
    for (size_t j = 0; j < config.num_nodes; ++j) {
      cluster->transports_[i].SetEndpoint(
          static_cast<NodeIndex>(j),
          {"127.0.0.1", cluster->transports_[j].local_port()});
    }
  }
  cluster->config_ = std::move(config);
  return cluster;
}

Status UdpCluster::SendOutgoing(
    NodeIndex src, const std::vector<NodeRuntime::Outgoing>& outgoing) {
  for (const auto& out : outgoing) {
    // Datagram envelope: the sender's index (sealed payloads do not reveal
    // it before verification).
    ByteWriter w;
    w.PutU32(src);
    w.PutRaw(out.payload);
    SB_RETURN_IF_ERROR(transports_[src].Send(out.dst, w.Take()));
  }
  return Status::OK();
}

Status UdpCluster::Insert(NodeIndex node,
                          const std::vector<FactUpdate>& facts) {
  SB_ASSIGN_OR_RETURN(NodeRuntime::ApplyOutcome outcome,
                      nodes_[node]->InsertLocal(facts));
  if (!outcome.accepted) {
    return Status::ConstraintViolation(outcome.reject_reason);
  }
  return SendOutgoing(node, outcome.outgoing);
}

Status UdpCluster::Deliver(NodeIndex dst, const Bytes& datagram) {
  ByteReader r(datagram);
  auto src = r.GetU32();
  if (!src.ok() || *src >= nodes_.size()) {
    ++stats_.rejected;
    return Status::OK();
  }
  auto payload = r.GetRaw(datagram.size() - sizeof(uint32_t));
  if (!payload.ok()) {
    ++stats_.rejected;
    return Status::OK();
  }
  // A malformed or hostile datagram must not take down the receive loop: a
  // secure node counts it and keeps serving. Only transport-level failures
  // below (Send) abort the run.
  Result<NodeRuntime::ApplyOutcome> outcome =
      nodes_[dst]->DeliverMessage(*payload, static_cast<NodeIndex>(*src));
  if (!outcome.ok()) {
    // Keep serving, but leave a trail: this path also catches local engine
    // failures (budget, internal errors), not just attacker garbage.
    SB_LOG_STREAM(Warning) << "node " << dst << ": rejected datagram from "
                           << *src << ": " << outcome.status().ToString();
    ++stats_.rejected;
    return Status::OK();
  }
  ++stats_.messages_delivered;
  if (!outcome->accepted) {
    ++stats_.rejected;
    return Status::OK();
  }
  return SendOutgoing(dst, outcome->outgoing);
}

Result<UdpCluster::Stats> UdpCluster::Run() {
  int idle = 0;
  while (idle < config_.idle_sweeps) {
    bool progress = false;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      // After a silent sweep, block briefly on the first receive so
      // in-flight datagrams land; drain the rest non-blocking.
      bool first = true;
      while (true) {
        Result<std::optional<Bytes>> datagram =
            (first && idle > 0)
                ? transports_[i].PollFor(config_.poll_timeout_ms)
                : transports_[i].Poll();
        if (!datagram.ok()) return datagram.status();
        if (!datagram->has_value()) break;
        first = false;
        progress = true;
        SB_RETURN_IF_ERROR(Deliver(static_cast<NodeIndex>(i), **datagram));
      }
    }
    idle = progress ? 0 : idle + 1;
  }
  return stats_;
}

}  // namespace secureblox::dist
