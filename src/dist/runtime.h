// Per-node runtime: one SecureBlox workspace with the says policy
// installed, credential/infrastructure facts seeded, and the distribution
// loop's two halves — collecting outgoing `export` tuples after each local
// transaction, and applying received batches as transactions (paper §5.1).
//
// Batch security (footnote 2: "we have found it useful to sign aggregates
// of serialized facts") seals whole messages with one MAC/signature and an
// optional AES pass, independently of any per-fact protection the Datalog
// policy applies inside the dataflow.
#ifndef SECUREBLOX_DIST_RUNTIME_H_
#define SECUREBLOX_DIST_RUNTIME_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "dist/placement.h"
#include "engine/query.h"
#include "engine/workspace.h"
#include "net/wire.h"
#include "policy/builtins.h"
#include "policy/keystore.h"
#include "policy/says_policy.h"

namespace secureblox::dist {

/// Whole-message protection applied by the runtime (independent of the
/// per-fact says policy inside the dataflow).
struct BatchSecurity {
  policy::AuthScheme auth = policy::AuthScheme::kNone;
  policy::EncScheme enc = policy::EncScheme::kNone;

  /// "NoAuth", "HMAC", "RSA-AES", ...
  std::string Name() const;
};

/// Node entity labels: node i is "n<i>" in every workspace's catalog.
std::string NodeLabel(net::NodeIndex index);
Result<size_t> ParseNodeLabel(const std::string& label);

class NodeRuntime {
 public:
  struct Config {
    net::NodeIndex index = 0;
    /// Principal of node i at position i (node <-> principal directory).
    std::vector<std::string> principals;
    policy::Credentials creds;
    BatchSecurity batch_security;
    /// Fixpoint worker threads for this node's workspace. -1 keeps the
    /// workspace default (the SB_THREADS environment variable); 0 = one
    /// per hardware thread; N >= 1 = exactly N (1 = sequential). The
    /// fixpoint result is identical for every setting.
    int fixpoint_threads = -1;
    /// Relation storage shards for this node's workspace. -1 keeps the
    /// workspace default (the SB_SHARDS environment variable); N >= 1
    /// hash-partitions every relation into N shards (1 = unsharded). The
    /// fixpoint result is identical for every setting.
    int storage_shards = -1;
    /// Query-serving mode (engine/query): installed rules feed the
    /// magic-sets front end instead of bottom-up materialization, and
    /// Query() answers goals on demand. Runtime constraints are dropped
    /// (a serving replica trusts upstream validation), so the node should
    /// not originate data of its own.
    bool query_mode = false;
    /// Partitioned shard placement: this node owns only its hash-assigned
    /// subset of every placed relation's shards (ShardMap); mutations
    /// targeting foreign shards route to their owners as sealed deltas.
    /// Requires `placed_preds` to pass engine::ValidatePlacement.
    bool placement = false;
    /// Predicate names under placement (must exist after Install).
    std::vector<std::string> placed_preds;
    /// Catalog node tag in placement mode. Placed shards migrate between
    /// nodes, so content-addressed labels must not depend on which node
    /// fired the creating rule — every member uses this shared tag.
    std::string placement_tag = "cluster";
  };

  /// One sealed batch addressed to a peer node.
  struct Outgoing {
    net::NodeIndex dst = 0;
    Bytes payload;
    size_t num_tuples = 0;
    /// Routing hints mirrored from the (sealed) batch header for
    /// transports that surface them outside the seal: target shard
    /// (net::kNoShard for exports) and the sender's map epoch.
    uint32_t shard = net::kNoShard;
    uint64_t map_epoch = 0;
  };

  /// Result of one local transaction (insert or delivery).
  struct ApplyOutcome {
    /// False when the transaction rolled back (constraint violation,
    /// failed batch authentication, or unparseable payload).
    bool accepted = true;
    std::string reject_reason;
    std::vector<Outgoing> outgoing;
    size_t num_derived = 0;
  };

  /// One sealed payload awaiting delivery, tagged with the claimed sender
  /// (coalesced deliveries mix payloads from many sources).
  struct SealedDelivery {
    net::NodeIndex src = 0;
    Bytes payload;
  };

  /// A payload whose whole-message seal has already been verified and
  /// stripped (the UDP receive thread runs the crypto off the apply loop;
  /// stats stay with the apply thread).
  struct OpenedDelivery {
    net::NodeIndex src = 0;
    bool auth_ok = true;
    Bytes opened;       // plaintext wire batch when auth_ok
    std::string error;  // reject reason when !auth_ok
  };

  /// Per-payload verdict of a coalesced delivery.
  struct DeliveryResult {
    bool accepted = true;
    std::string reject_reason;
  };

  /// Result of one coalesced delivery: per-payload verdicts (parallel to
  /// the input) plus the union of the committed transactions' exports.
  struct BatchOutcome {
    std::vector<DeliveryResult> results;
    size_t accepted_payloads = 0;
    /// Commits performed: 1 on the happy path, more after a bisect.
    size_t transactions = 0;
    std::vector<Outgoing> outgoing;
    size_t num_derived = 0;
  };

  struct Stats {
    uint64_t batches_accepted = 0;
    uint64_t batches_rejected_auth = 0;
    uint64_t batches_rejected_parse = 0;
    uint64_t batches_rejected_constraint = 0;
    /// Committed coalesced apply transactions (delivery path only).
    uint64_t delivery_txns = 0;
    /// Payloads that shared a committed transaction with at least one other.
    uint64_t coalesced_payloads = 0;
    /// Constraint-violation bisections (batch splits isolating a poisoned
    /// source from its peers).
    uint64_t bisect_splits = 0;
    /// Placement batches that arrived at a non-owner (stale map epoch or
    /// lying envelope) and were re-sealed and forwarded to the owner.
    uint64_t batches_rerouted = 0;
    /// Placement batches whose header claimed a shard this deployment
    /// cannot route (placement off, or shard index out of range).
    uint64_t batches_rejected_routing = 0;
    /// Handoff snapshot rows installed by deliveries.
    uint64_t handoff_rows_in = 0;
  };

  /// Build the workspace: expand `sources` through BloxGenerics (policies
  /// included), install, and seed self/node directory/key facts.
  static Result<std::unique_ptr<NodeRuntime>> Create(
      Config config, const std::vector<std::string>& sources);

  /// Apply a batch of local base-fact insertions as one ACID transaction
  /// and collect the resulting advertisements.
  Result<ApplyOutcome> InsertLocal(const std::vector<engine::FactUpdate>&
                                       facts);

  /// Mixed local transaction: insertions plus base-fact deletions.
  Result<ApplyOutcome> ApplyLocal(const std::vector<engine::FactUpdate>& inserts,
                                  const std::vector<engine::FactUpdate>&
                                      deletes);

  /// Verify/decrypt and apply a received batch from node `src`. Rejection
  /// (bad seal, unparseable, constraint violation) rolls back and reports
  /// accepted=false; transport-level errors surface as non-OK status.
  Result<ApplyOutcome> DeliverMessage(const Bytes& payload,
                                      net::NodeIndex src);

  /// Coalesced delivery (paper §5.2): verify every payload's seal against
  /// its own source, then apply all surviving payloads' facts as ONE
  /// commit. A failed seal or unparseable payload rejects only that
  /// payload; a constraint violation bisects the batch so the poisoned
  /// source is isolated while its peers' facts commit.
  Result<BatchOutcome> DeliverBatch(const std::vector<SealedDelivery>& batch);

  /// Same, for payloads whose seals were already verified/stripped (the
  /// pipelined UDP receive path).
  Result<BatchOutcome> DeliverOpened(const std::vector<OpenedDelivery>& batch);

  /// Batch sealing: optional AES-CTR pass under the pairwise secret, then
  /// MAC/signature over the (possibly encrypted) payload. Both are const
  /// and touch only immutable credentials, so a receive thread may run
  /// OpenFromPeer concurrently with the apply loop.
  Result<Bytes> SealForPeer(const Bytes& raw, net::NodeIndex peer) const;
  Result<Bytes> OpenFromPeer(const Bytes& sealed, net::NodeIndex peer) const;

  /// Answer one point query (engine::QueryGoal: bound positions carry
  /// values, free positions are nullopt). Thread-safe: concurrent Query
  /// calls share a reader lock when the goal's memo is warm; a cold goal
  /// (or one whose slice changed) takes the writer lock to install/seed
  /// its rule slice. Apply/Deliver paths exclude all queries. Works in
  /// both modes — on a materialized workspace it is a filtered scan.
  Result<std::vector<engine::Tuple>> Query(const engine::QueryGoal& goal);

  /// Query-engine counters (warm hits vs slice installs; see
  /// engine::QueryEngine::Stats).
  engine::QueryEngine::Stats query_stats() const { return query_->stats(); }

  // -- placement -------------------------------------------------------------

  bool placement_enabled() const { return config_.placement; }
  const ShardMap& shard_map() const { return shard_map_; }

  /// Adopt a new shard-ownership map (membership change). Takes the
  /// exclusive lock: transactions see one epoch end-to-end. Any state the
  /// *old* map owned here but the new map assigns elsewhere must have been
  /// extracted with ExtractHandoff first.
  void SetShardMap(const ShardMap& map);

  /// Detach every locally-owned shard that `new_map` assigns to another
  /// node and return the sealed handoff batches addressed to the new
  /// owners. Call between transactions, before SetShardMap(new_map).
  Result<std::vector<Outgoing>> ExtractHandoff(const ShardMap& new_map);

  engine::Workspace& workspace() { return *ws_; }
  const engine::Workspace& workspace() const { return *ws_; }
  policy::NodeSecurityState& security_state() { return security_; }
  const std::string& principal() const { return config_.creds.principal; }
  net::NodeIndex index() const { return config_.index; }
  const Stats& stats() const { return stats_; }

 private:
  NodeRuntime() = default;

  /// One decoded payload: its index in the caller's batch plus its facts
  /// and placement deltas.
  struct DecodedPayload {
    size_t index = 0;
    std::vector<engine::FactUpdate> facts;
    std::vector<engine::RemoteOp> remote;
  };

  Result<ApplyOutcome> ApplyAndCollect(
      const std::vector<engine::FactUpdate>& facts,
      const std::vector<engine::FactUpdate>& deletes, bool from_network);
  /// Apply payloads [lo, hi) as one transaction; on violation, bisect.
  Status ApplyDecodedRange(const std::vector<DecodedPayload>& decoded,
                           size_t lo, size_t hi, BatchOutcome* out);
  Result<std::vector<Outgoing>> CollectOutgoing(
      const engine::TxCommit& commit);
  Result<const std::string*> PrincipalOf(net::NodeIndex peer) const;

  Config config_;
  /// Cluster shard-ownership map (placement mode; epoch 0 = unset).
  ShardMap shard_map_;
  /// Engine-side placement view handed to FixpointOptions; owner_of reads
  /// shard_map_ live, so SetShardMap needs no engine round trip.
  engine::ShardPlacement placement_;
  std::unique_ptr<engine::Workspace> ws_;
  std::unique_ptr<engine::QueryEngine> query_;
  /// Serializes workspace mutation (exclusive) against warm query reads
  /// (shared). Cold queries upgrade to exclusive because they install and
  /// seed rule slices through a transaction.
  mutable std::shared_mutex query_mu_;
  policy::NodeSecurityState security_;
  Stats stats_;
};

}  // namespace secureblox::dist

#endif  // SECUREBLOX_DIST_RUNTIME_H_
