// Live cluster over real UDP sockets (the paper's transport): the same
// NodeRuntimes as the simulator, exchanging sealed batches on localhost.
//
// Pipelined distribution (paper §5.2): a receive thread drains every
// socket, verifies each datagram's seal against its claimed source, and
// enqueues the opened payloads; the apply loop drains that queue and
// coalesces payloads per destination — across sources — into multi-source
// transactions of up to `max_batch_tuples` tuples. Crypto thus overlaps
// the fixpoint computation, and per-message transaction overhead amortizes
// across the batch.
#ifndef SECUREBLOX_DIST_UDP_CLUSTER_H_
#define SECUREBLOX_DIST_UDP_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "dist/runtime.h"
#include "net/udp_transport.h"
#include "policy/keystore.h"

namespace secureblox::dist {

class UdpCluster {
 public:
  struct Config {
    size_t num_nodes = 2;
    std::vector<std::string> sources;
    BatchSecurity batch_security;
    policy::CredentialAuthority::Options credentials;
    /// Receive window per drain sweep; the run stops after `idle_sweeps`
    /// consecutive sweeps with no traffic.
    int poll_timeout_ms = 50;
    int idle_sweeps = 3;
    /// §5.2 granularity knob: maximum tuples per coalesced apply
    /// transaction (whole datagrams; counts are verified against the
    /// decoded payload, never the sender-declared envelope hint). 0 =
    /// unbounded; 1 reproduces one-transaction-per-datagram.
    size_t max_batch_tuples = 0;
    /// Extra wall-clock seconds the apply loop holds a non-full batch
    /// open after its first datagram, hoping to coalesce more (0 = apply
    /// as soon as the loop sees it). A batch that reaches
    /// `max_batch_tuples` closes immediately — the same §5.2 semantics
    /// SimCluster implements in simulated time.
    double max_batch_delay_s = 0;
    /// Partitioned shard placement (dist/placement.h) over a static
    /// membership of all nodes. Join/leave handoff is exercised through
    /// the runtimes directly (ExtractHandoff/SetShardMap); the transport
    /// only adds the envelope routing hints.
    bool placement = false;
    std::vector<std::string> placed_preds;
    /// Relation storage shards per node (-1 = the SB_SHARDS default).
    int storage_shards = -1;
  };

  struct Stats {
    uint64_t messages_delivered = 0;
    /// Hostile or malformed traffic: unparseable envelopes, payloads whose
    /// verdict was rejection (bad seal, unparseable, constraint
    /// violation), and envelope tuple-count hints contradicting the
    /// decoded payload (each lying hint counts once here and in
    /// hint_mismatches; the payload itself is still applied if its seal
    /// and contents verify).
    uint64_t rejected = 0;
    /// Datagrams whose envelope hint disagreed with the decoded payload's
    /// actual tuple count — the hint rides outside the seal, so this is
    /// the MITM/bug canary for batch-sizing abuse.
    uint64_t hint_mismatches = 0;
    /// Datagrams whose envelope shard/epoch hints disagreed with the
    /// sealed batch header. Routing decisions always come from the sealed
    /// header, so a lying envelope cannot misroute — but it is counted
    /// here, same canary contract as hint_mismatches.
    uint64_t routing_mismatches = 0;
    /// Coalesced apply transactions executed by the drain loop.
    uint64_t apply_transactions = 0;
    /// Datagrams that shared an apply transaction with at least one other.
    uint64_t coalesced_messages = 0;
  };

  /// Bind one socket per node on 127.0.0.1 (ephemeral ports) and create
  /// the runtimes.
  static Result<std::unique_ptr<UdpCluster>> Create(Config config);

  /// Apply a local transaction on `node` and send its advertisements.
  Status Insert(net::NodeIndex node,
                const std::vector<engine::FactUpdate>& facts);

  /// Pipelined run: the receive thread verifies and enqueues while the
  /// apply loop drains coalesced batches, until the sockets stay quiet
  /// for `idle_sweeps` windows.
  Result<Stats> Run();

  NodeRuntime& node(net::NodeIndex i) { return *nodes_[i]; }
  uint16_t port_of(net::NodeIndex i) const {
    return transports_[i].local_port();
  }

 private:
  UdpCluster() = default;

  Status SendOutgoing(net::NodeIndex src,
                      const std::vector<NodeRuntime::Outgoing>& outgoing);

  Config config_;
  std::vector<std::unique_ptr<NodeRuntime>> nodes_;
  std::vector<net::UdpTransport> transports_;
  Stats stats_;
};

}  // namespace secureblox::dist

#endif  // SECUREBLOX_DIST_UDP_CLUSTER_H_
