// Simulated cluster: N node runtimes over the discrete-event network
// model, standing in for the paper's 36/72-node GbE deployment. Each
// delivery/insert runs as one ACID transaction on the owning node; compute
// time is the measured wall-clock cost (scaled by compute_scale) and
// message latency comes from the SimNet latency/bandwidth model — the
// quantities behind Figures 4–12.
#ifndef SECUREBLOX_DIST_CLUSTER_H_
#define SECUREBLOX_DIST_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "dist/runtime.h"
#include "net/sim_net.h"
#include "policy/keystore.h"

namespace secureblox::dist {

class SimCluster {
 public:
  struct Config {
    size_t num_nodes = 2;
    /// Program sources (prelude + app + policy), installed on every node.
    std::vector<std::string> sources;
    BatchSecurity batch_security;
    policy::CredentialAuthority::Options credentials;
    net::SimNet::Config net;
    /// Simulated seconds per measured wall-clock second of compute.
    double compute_scale = 1.0;
  };

  /// One transaction (local insert or delivery) in simulated time.
  struct TxRecord {
    net::NodeIndex node = 0;
    bool accepted = true;
    double start_s = 0;
    double end_s = 0;
  };

  struct Metrics {
    /// Time until the last node stopped changing (distributed fixpoint).
    double fixpoint_latency_s = 0;
    /// Per-node time of the last accepted state change (Figures 8/9 CDF).
    std::vector<double> node_convergence_s;
    uint64_t total_messages = 0;
    uint64_t total_bytes = 0;
    /// Deliveries rejected (bad seal, unparseable, constraint violation).
    uint64_t rejected_batches = 0;
    std::vector<TxRecord> transactions;
    /// Bytes sent per node (Figures 6/12).
    std::vector<uint64_t> node_bytes_sent;

    double MeanPerNodeKb() const;
    double MeanTxDurationMs() const;
  };

  /// Build runtimes for principals p0..p(n-1) with issued credentials.
  static Result<std::unique_ptr<SimCluster>> Create(Config config);

  /// Queue a local base-fact transaction for node `node` at time zero (in
  /// scheduling order; a node processes its queue sequentially).
  void ScheduleInsert(net::NodeIndex node,
                      std::vector<engine::FactUpdate> facts);

  /// Run scheduled inserts and message deliveries until the network drains.
  Result<Metrics> Run();

  NodeRuntime& node(net::NodeIndex i) { return *nodes_[i]; }
  size_t num_nodes() const { return nodes_.size(); }

 private:
  SimCluster() = default;

  Config config_;
  std::vector<std::unique_ptr<NodeRuntime>> nodes_;
  net::SimNet net_;
  std::vector<std::pair<net::NodeIndex, std::vector<engine::FactUpdate>>>
      scheduled_;
};

}  // namespace secureblox::dist

#endif  // SECUREBLOX_DIST_CLUSTER_H_
