// Simulated cluster: N node runtimes over the discrete-event network
// model, standing in for the paper's 36/72-node GbE deployment.
//
// Distribution loop (paper §5.2): a node coalesces all queued deliveries
// addressed to it — across source nodes — into a single multi-source
// transaction of up to `max_batch_tuples` tuples, optionally holding the
// batch open `max_batch_delay_s` after the first arrival. Compute and
// network overlap: a node's fixpoint occupies only that node in simulated
// time, so other nodes' transactions and in-flight messages proceed
// concurrently, and messages that land while a node is busy coalesce into
// its next transaction. Compute time is the measured wall-clock cost
// (scaled by compute_scale) and message latency comes from the SimNet
// latency/bandwidth model — the quantities behind Figures 4–12.
#ifndef SECUREBLOX_DIST_CLUSTER_H_
#define SECUREBLOX_DIST_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "dist/runtime.h"
#include "net/sim_net.h"
#include "policy/keystore.h"

namespace secureblox::dist {

class SimCluster {
 public:
  struct Config {
    size_t num_nodes = 2;
    /// Program sources (prelude + app + policy), installed on every node.
    std::vector<std::string> sources;
    BatchSecurity batch_security;
    policy::CredentialAuthority::Options credentials;
    net::SimNet::Config net;
    /// Simulated seconds per measured wall-clock second of compute.
    double compute_scale = 1.0;
    /// §5.2 granularity knob: maximum tuples coalesced into one delivery
    /// transaction (whole messages only — the first queued message is
    /// always taken). 0 = unbounded; 1 reproduces the seed's
    /// one-transaction-per-message loop.
    size_t max_batch_tuples = 0;
    /// Extra simulated seconds a node holds a batch open after the first
    /// queued delivery, hoping to coalesce more (0 = apply as soon as the
    /// node is free).
    double max_batch_delay_s = 0;
    /// Partitioned shard placement (dist/placement.h): every node runs
    /// with `placed_preds` partitioned by the cluster ShardMap instead of
    /// fully replicated.
    bool placement = false;
    std::vector<std::string> placed_preds;
    /// Nodes 0..initial_members-1 own shards at time zero; the rest hold
    /// empty placed relations until a scheduled join admits them. 0 = all
    /// nodes are members from the start.
    size_t initial_members = 0;
    /// Relation storage shards per node (-1 = the SB_SHARDS default).
    int storage_shards = -1;
  };

  /// One transaction (local update or coalesced delivery) in simulated
  /// time. Every transaction — including rejected deliveries — carries a
  /// real duration (end_s > start_s): verification work costs cycles.
  struct TxRecord {
    net::NodeIndex node = 0;
    bool accepted = true;
    bool is_delivery = false;
    double start_s = 0;
    double end_s = 0;
    /// Messages coalesced into this transaction (0 for local updates).
    size_t num_payloads = 0;
    /// Sender-declared tuples across those messages.
    size_t num_tuples = 0;
    /// Shard-snapshot extraction on a membership change: the node spent
    /// this time detaching and sealing departing shards.
    bool is_handoff = false;
  };

  struct Metrics {
    /// Time until the last node stopped changing (distributed fixpoint).
    double fixpoint_latency_s = 0;
    /// Per-node time of the last accepted state change (Figures 8/9 CDF).
    std::vector<double> node_convergence_s;
    uint64_t total_messages = 0;
    uint64_t total_bytes = 0;
    /// Delivered payloads rejected (bad seal, unparseable, constraint
    /// violation) — counted per payload, not per coalesced transaction.
    uint64_t rejected_batches = 0;
    /// Coalesced delivery transactions executed.
    uint64_t delivery_transactions = 0;
    /// Messages that shared a delivery transaction with at least one other.
    uint64_t coalesced_messages = 0;
    /// Membership changes executed (joins + leaves).
    uint64_t membership_changes = 0;
    /// Handoff batches shipped on membership changes, and the snapshot
    /// rows they carried.
    uint64_t handoff_transfers = 0;
    uint64_t handoff_rows = 0;
    /// Placement batches re-sealed and forwarded by a non-owner (stale
    /// epoch after a membership change), summed over nodes.
    uint64_t rerouted_batches = 0;
    std::vector<TxRecord> transactions;
    /// Bytes sent per node (Figures 6/12).
    std::vector<uint64_t> node_bytes_sent;

    double MeanPerNodeKb() const;
    double MeanTxDurationMs() const;
  };

  /// Build runtimes for principals p0..p(n-1) with issued credentials.
  static Result<std::unique_ptr<SimCluster>> Create(Config config);

  /// Queue a local base-fact transaction for node `node` at time zero (in
  /// scheduling order; a node processes its queue sequentially).
  void ScheduleInsert(net::NodeIndex node,
                      std::vector<engine::FactUpdate> facts);

  /// Queue a mixed insert+delete transaction no earlier than `at_s`
  /// simulated seconds — churn interleaving with in-flight deliveries.
  void ScheduleUpdate(net::NodeIndex node,
                      std::vector<engine::FactUpdate> inserts,
                      std::vector<engine::FactUpdate> deletes,
                      double at_s = 0.0);

  /// Queue a membership change (placement mode only): at `at_s`, the
  /// named node joins or leaves the shard map. Departing shards are
  /// detached at their old owners (simulated-time-accounted handoff
  /// transactions) and streamed to the new owners; the new map activates
  /// on every node synchronously (an idealized membership service).
  void ScheduleJoin(net::NodeIndex node, double at_s);
  void ScheduleLeave(net::NodeIndex node, double at_s);

  /// Run scheduled updates and message deliveries until the network drains.
  Result<Metrics> Run();

  const ShardMap& shard_map() const { return map_; }

  NodeRuntime& node(net::NodeIndex i) { return *nodes_[i]; }
  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct ScheduledTx {
    net::NodeIndex node = 0;
    std::vector<engine::FactUpdate> inserts;
    std::vector<engine::FactUpdate> deletes;
    double at_s = 0;
    /// Membership event: kJoin/kLeave of `node` instead of a transaction.
    enum class Kind { kTx, kJoin, kLeave };
    Kind kind = Kind::kTx;
  };

  SimCluster() = default;

  Config config_;
  std::vector<std::unique_ptr<NodeRuntime>> nodes_;
  net::SimNet net_;
  std::vector<ScheduledTx> scheduled_;
  /// Authoritative shard map in placement mode (nodes hold copies).
  ShardMap map_;
};

}  // namespace secureblox::dist

#endif  // SECUREBLOX_DIST_CLUSTER_H_
