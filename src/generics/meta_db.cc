#include "generics/meta_db.h"

#include "common/strings.h"

namespace secureblox::generics {

Status MetaDb::Declare(const std::string& name, size_t arity,
                       bool functional) {
  auto it = preds_.find(name);
  if (it != preds_.end()) {
    if (it->second.arity != arity) {
      return Status::CompileError(
          "generic predicate '" + name +
          "' used with inconsistent arity (" +
          std::to_string(it->second.arity) + " vs " + std::to_string(arity) +
          ")");
    }
    // `says(T, ST)` may reference the functional `says[T]=ST` in paren form
    // (paper §4.1.4); the functional declaration wins.
    if (functional && !it->second.functional) {
      it->second.functional = true;
      for (const MetaTuple& t : it->second.tuples) {
        it->second.fd[MetaTuple(t.begin(), t.end() - 1)] = t.back();
      }
    }
    return Status::OK();
  }
  GenericPred p;
  p.arity = arity;
  p.functional = functional;
  preds_[name] = std::move(p);
  return Status::OK();
}

bool MetaDb::IsDeclared(const std::string& name) const {
  return preds_.count(name) > 0;
}

bool MetaDb::IsFunctional(const std::string& name) const {
  auto it = preds_.find(name);
  return it != preds_.end() && it->second.functional;
}

size_t MetaDb::Arity(const std::string& name) const {
  auto it = preds_.find(name);
  return it == preds_.end() ? 0 : it->second.arity;
}

Result<bool> MetaDb::Insert(const std::string& name, MetaTuple tuple) {
  auto it = preds_.find(name);
  if (it == preds_.end()) {
    return Status::CompileError("undeclared generic predicate '" + name + "'");
  }
  GenericPred& p = it->second;
  if (tuple.size() != p.arity) {
    return Status::CompileError("arity mismatch inserting into generic "
                                "predicate '" + name + "'");
  }
  if (p.index.count(tuple)) return false;
  if (p.functional) {
    MetaTuple keys(tuple.begin(), tuple.end() - 1);
    auto fd_it = p.fd.find(keys);
    if (fd_it != p.fd.end() && fd_it->second != tuple.back()) {
      return Status::CompileError(
          "generic predicate '" + name + "' derived conflicting values for [" +
          Join(keys, ", ") + "]: '" + fd_it->second + "' vs '" + tuple.back() +
          "'");
    }
    p.fd[keys] = tuple.back();
  }
  p.index.insert(tuple);
  p.tuples.push_back(std::move(tuple));
  return true;
}

const std::vector<MetaTuple>& MetaDb::Tuples(const std::string& name) const {
  static const std::vector<MetaTuple> kEmpty;
  auto it = preds_.find(name);
  return it == preds_.end() ? kEmpty : it->second.tuples;
}

Result<std::string> MetaDb::LookupValue(const std::string& name,
                                        const MetaTuple& keys) const {
  auto it = preds_.find(name);
  if (it == preds_.end() || !it->second.functional) {
    return Status::NotFound("no functional generic predicate '" + name + "'");
  }
  auto fd_it = it->second.fd.find(keys);
  if (fd_it == it->second.fd.end()) {
    return Status::NotFound("no instance of " + name + "[" + Join(keys, ", ") +
                            "]");
  }
  return fd_it->second;
}

std::vector<std::string> MetaDb::RelationNames() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : preds_) out.push_back(name);
  return out;
}

}  // namespace secureblox::generics
