#include "generics/compiler.h"

#include <functional>
#include <set>

#include "common/strings.h"
#include "datalog/typecheck.h"

namespace secureblox::generics {

using datalog::Atom;
using datalog::Catalog;
using datalog::CmpOp;
using datalog::ConstraintDecl;
using datalog::GenericConstraint;
using datalog::GenericRule;
using datalog::Literal;
using datalog::PredRef;
using datalog::Program;
using datalog::Rule;
using datalog::Term;
using datalog::TermKind;
using datalog::TermPtr;
using datalog::Value;
using datalog::ValueKind;

namespace {

/// Variable binding at the meta level: variable name -> program element.
using Binding = std::map<std::string, std::string>;

class CompilerImpl {
 public:
  CompilerImpl(const Program& input,
               const BloxGenericsCompiler::Options& options)
      : input_(input), options_(options) {}

  Result<ExpansionResult> Run() {
    SB_RETURN_IF_ERROR(BuildObjectSchema());
    SB_RETURN_IF_ERROR(BuildMetaDb());
    SB_RETURN_IF_ERROR(EvaluateGenericRules());
    SB_RETURN_IF_ERROR(CheckGenericConstraints());

    ExpansionResult out;
    out.program.rules = input_.rules;
    out.program.constraints = input_.constraints;
    SB_RETURN_IF_ERROR(ExpandTemplates(&out.program));
    SB_RETURN_IF_ERROR(ResolveProgram(&out.program));
    out.generated_predicates = generated_;
    out.meta = meta_;
    return out;
  }

 private:
  // --- schema of the object program (arities / types for V*) --------------

  Status BuildObjectSchema() {
    Program schema_only;
    schema_only.constraints = input_.constraints;
    auto runtime = datalog::BuildSchema(schema_only, &catalog_);
    if (!runtime.ok()) return runtime.status();
    return Status::OK();
  }

  // --- meta database -------------------------------------------------------

  // Extract the element name of a meta-level term (quoted predicate or
  // string constant); empty for variables.
  static Result<std::string> MetaConst(const TermPtr& t) {
    if (t->kind == TermKind::kQuotedPred) return t->name;
    if (t->kind == TermKind::kConst &&
        t->constant.kind() == ValueKind::kString) {
      return t->constant.AsString();
    }
    return Status::CompileError("expected predicate reference in meta atom, "
                                "got " + t->ToString());
  }

  Status DeclareFromAtom(const Atom& a) {
    if (a.pred.parameterized() || a.pred.name_is_metavar) {
      return Status::CompileError(
          "generic-rule atoms cannot be parameterized: " + a.ToString());
    }
    return meta_.Declare(a.pred.name, a.arity(), a.functional);
  }

  Status BuildMetaDb() {
    // Built-in generic predicates.
    SB_RETURN_IF_ERROR(meta_.Declare("predicate", 1, false));
    SB_RETURN_IF_ERROR(meta_.Declare("rule", 1, false));
    SB_RETURN_IF_ERROR(meta_.Declare("ruleHead", 2, false));
    SB_RETURN_IF_ERROR(meta_.Declare("ruleBody", 2, false));

    for (size_t i = 0; i < catalog_.num_predicates(); ++i) {
      const auto& decl = catalog_.decl(static_cast<datalog::PredId>(i));
      if (decl.is_primitive || decl.is_entity_type) continue;
      auto st = meta_.Insert("predicate", {decl.name});
      if (!st.ok()) return st.status();
    }
    for (size_t i = 0; i < input_.rules.size(); ++i) {
      const Rule& r = input_.rules[i];
      std::string id = "rule$" + std::to_string(i);
      auto st = meta_.Insert("rule", {id});
      if (!st.ok()) return st.status();
      for (const Atom& h : r.heads) {
        auto st2 = meta_.Insert("ruleHead", {id, h.pred.name});
        if (!st2.ok()) return st2.status();
      }
      for (const Literal& lit : r.body) {
        if (lit.kind != Literal::Kind::kAtom) continue;
        auto st2 = meta_.Insert("ruleBody", {id, lit.atom.pred.name});
        if (!st2.ok()) return st2.status();
      }
    }

    // Implicitly declare user generic predicates from all generic clauses.
    for (const GenericRule& gr : input_.generic_rules) {
      for (const Atom& h : gr.head_atoms) SB_RETURN_IF_ERROR(DeclareFromAtom(h));
      for (const Literal& l : gr.body) {
        if (l.kind == Literal::Kind::kAtom) {
          SB_RETURN_IF_ERROR(DeclareFromAtom(l.atom));
        }
      }
    }
    for (const GenericConstraint& gc : input_.generic_constraints) {
      for (const auto* side : {&gc.lhs, &gc.rhs}) {
        for (const Literal& l : *side) {
          if (l.kind == Literal::Kind::kAtom) {
            SB_RETURN_IF_ERROR(DeclareFromAtom(l.atom));
          }
        }
      }
    }
    for (const Atom& fact : input_.meta_facts) {
      SB_RETURN_IF_ERROR(DeclareFromAtom(fact));
      MetaTuple tuple;
      for (const auto& arg : fact.args) {
        SB_ASSIGN_OR_RETURN(std::string v, MetaConst(arg));
        tuple.push_back(std::move(v));
      }
      auto st = meta_.Insert(fact.pred.name, std::move(tuple));
      if (!st.ok()) return st.status();
    }
    return Status::OK();
  }

  // --- meta-level body enumeration ----------------------------------------

  Status Enumerate(const std::vector<Literal>& body, size_t idx, Binding& b,
                   const std::function<Status(const Binding&)>& cb) const {
    if (idx == body.size()) return cb(b);
    const Literal& lit = body[idx];

    if (lit.kind == Literal::Kind::kCompare) {
      const auto& c = lit.cmp;
      auto value_of = [&](const TermPtr& t) -> Result<std::string> {
        if (t->kind == TermKind::kVar) {
          auto it = b.find(t->name);
          if (it == b.end()) {
            return Status::CompileError("unbound meta variable '" + t->name +
                                        "' in comparison");
          }
          return it->second;
        }
        return MetaConst(t);
      };
      SB_ASSIGN_OR_RETURN(std::string l, value_of(c.lhs));
      SB_ASSIGN_OR_RETURN(std::string r, value_of(c.rhs));
      bool pass;
      switch (c.op) {
        case CmpOp::kEq: pass = (l == r); break;
        case CmpOp::kNe: pass = (l != r); break;
        default:
          return Status::CompileError(
              "only = and != are supported in generic rule bodies");
      }
      if (!pass) return Status::OK();
      return Enumerate(body, idx + 1, b, cb);
    }

    const Atom& a = lit.atom;
    if (a.negated) {
      // Negation over fully bound meta atoms.
      MetaTuple probe;
      for (const auto& arg : a.args) {
        if (arg->kind == TermKind::kVar) {
          auto it = b.find(arg->name);
          if (it == b.end()) {
            return Status::CompileError(
                "negated meta atom uses unbound variable '" + arg->name + "'");
          }
          probe.push_back(it->second);
        } else {
          SB_ASSIGN_OR_RETURN(std::string v, MetaConst(arg));
          probe.push_back(std::move(v));
        }
      }
      for (const MetaTuple& t : meta_.Tuples(a.pred.name)) {
        if (t == probe) return Status::OK();  // exists: negation fails
      }
      return Enumerate(body, idx + 1, b, cb);
    }

    if (!meta_.IsDeclared(a.pred.name)) {
      return Status::CompileError("unknown generic predicate '" +
                                  a.pred.name + "'");
    }
    for (const MetaTuple& t : meta_.Tuples(a.pred.name)) {
      if (t.size() != a.arity()) continue;
      Binding saved = b;
      bool ok = true;
      for (size_t i = 0; i < t.size() && ok; ++i) {
        const TermPtr& arg = a.args[i];
        if (arg->kind == TermKind::kVar) {
          auto it = b.find(arg->name);
          if (it == b.end()) {
            b[arg->name] = t[i];
          } else if (it->second != t[i]) {
            ok = false;
          }
        } else {
          auto c = MetaConst(arg);
          if (!c.ok() || c.value() != t[i]) ok = false;
        }
      }
      if (ok) SB_RETURN_IF_ERROR(Enumerate(body, idx + 1, b, cb));
      b = std::move(saved);
    }
    return Status::OK();
  }

  // --- generic rule fixpoint ------------------------------------------------

  static std::string BindingKey(const Binding& b) {
    std::string key;
    for (const auto& [k, v] : b) key += k + "=" + v + ";";
    return key;
  }

  // Variables of a generic rule's heads+templates that must come from the
  // body (anything else is a head existential).
  static std::set<std::string> AtomVars(const Atom& a) {
    std::set<std::string> out;
    if (a.pred.name_is_metavar) out.insert(a.pred.name);
    if (a.pred.param != nullptr && a.pred.param->kind == TermKind::kVar) {
      out.insert(a.pred.param->name);
    }
    for (const auto& arg : a.args) {
      if (arg->kind == TermKind::kVar) out.insert(arg->name);
      if (arg->kind == TermKind::kVararg) out.insert("*" + arg->name);
    }
    return out;
  }

  Result<std::string> NameForExistential(const GenericRule& gr,
                                         const std::string& var,
                                         const Binding& b) const {
    // Prefer the functional head atom whose value is this variable:
    // says[T]=ST names ST as says$<T>.
    for (const Atom& h : gr.head_atoms) {
      if (!h.functional) continue;
      const TermPtr& value = h.args.back();
      if (value->kind != TermKind::kVar || value->name != var) continue;
      std::string name = h.pred.name;
      for (size_t i = 0; i + 1 < h.args.size(); ++i) {
        const TermPtr& key = h.args[i];
        if (key->kind == TermKind::kVar) {
          auto it = b.find(key->name);
          if (it == b.end()) break;
          name += "$" + it->second;
        } else {
          SB_ASSIGN_OR_RETURN(std::string c, MetaConst(key));
          name += "$" + c;
        }
      }
      return name;
    }
    return "gen$" + var + "$" + std::to_string(generated_.size());
  }

  Status EvaluateGenericRules() {
    for (int round = 0; round < options_.max_rounds; ++round) {
      bool changed = false;
      for (size_t gi = 0; gi < input_.generic_rules.size(); ++gi) {
        const GenericRule& gr = input_.generic_rules[gi];
        std::vector<Binding> bindings;
        Binding scratch;
        SB_RETURN_IF_ERROR(Enumerate(gr.body, 0, scratch,
                                     [&](const Binding& b) -> Status {
                                       bindings.push_back(b);
                                       return Status::OK();
                                     }));
        for (Binding& b : bindings) {
          std::string memo_key =
              std::to_string(gi) + "|" + BindingKey(b);
          bool first_time = processed_.insert(memo_key).second;

          // Head existentials: create fresh predicates (memoized with the
          // rest of the binding).
          if (first_time) {
            std::set<std::string> needed;
            for (const Atom& h : gr.head_atoms) {
              for (const auto& v : AtomVars(h)) needed.insert(v);
            }
            for (const std::string& var : needed) {
              if (var[0] == '*' || b.count(var)) continue;
              SB_ASSIGN_OR_RETURN(std::string name,
                                  NameForExistential(gr, var, b));
              if (catalog_.IsDeclared(name)) {
                return Status::CompileError(
                    "generated predicate '" + name +
                    "' collides with an existing declaration");
              }
              b[var] = name;
              generated_.push_back(name);
              if (generated_.size() > options_.max_generated) {
                return Status::CompileError(
                    "BloxGenerics expansion exceeded the generated-predicate "
                    "cap (non-terminating meta-program?)");
              }
              existential_names_.insert(name);
            }
            memo_bindings_[memo_key] = b;
          } else {
            b = memo_bindings_[memo_key];
          }

          // Derive head meta facts.
          for (const Atom& h : gr.head_atoms) {
            MetaTuple tuple;
            bool complete = true;
            for (const auto& arg : h.args) {
              if (arg->kind == TermKind::kVar) {
                auto it = b.find(arg->name);
                if (it == b.end()) {
                  complete = false;
                  break;
                }
                tuple.push_back(it->second);
              } else {
                SB_ASSIGN_OR_RETURN(std::string c, MetaConst(arg));
                tuple.push_back(std::move(c));
              }
            }
            if (!complete) {
              return Status::CompileError(
                  "generic rule head uses unbound variable: " + h.ToString());
            }
            SB_ASSIGN_OR_RETURN(bool fresh,
                                meta_.Insert(h.pred.name, std::move(tuple)));
            changed |= fresh;
          }

          if (first_time && !gr.templates.empty()) {
            instantiations_.push_back({gi, b});
            changed = true;
          }
        }
      }
      if (!changed) return Status::OK();
    }
    return Status::CompileError(
        "BloxGenerics evaluation did not reach a fixpoint within " +
        std::to_string(options_.max_rounds) +
        " rounds (compile-time limit, paper §4.1.1)");
  }

  // --- generic constraints ---------------------------------------------------

  Status CheckGenericConstraints() const {
    for (const GenericConstraint& gc : input_.generic_constraints) {
      Binding scratch;
      SB_RETURN_IF_ERROR(Enumerate(gc.lhs, 0, scratch,
                                   [&](const Binding& b) -> Status {
        Binding probe = b;
        bool found = false;
        Status st = Enumerate(gc.rhs, 0, probe, [&](const Binding&) -> Status {
          found = true;
          return Status(StatusCode::kInternal, "__found__");
        });
        if (!st.ok() && st.message() != "__found__") return st;
        if (!found) {
          std::string binding;
          for (const auto& [k, v] : b) {
            if (!binding.empty()) binding += ", ";
            binding += k + "=" + v;
          }
          return Status::CompileError(
              "generic constraint violated (program rejected before code "
              "generation): " + LiteralsToText(gc.lhs) + " --> " +
              LiteralsToText(gc.rhs) + " [" + binding + "]");
        }
        return Status::OK();
      }));
    }
    return Status::OK();
  }

  static std::string LiteralsToText(const std::vector<Literal>& lits) {
    std::vector<std::string> parts;
    for (const auto& l : lits) parts.push_back(l.ToString());
    return Join(parts, ", ");
  }

  // --- template expansion -----------------------------------------------------

  // Arity used for V* expansion: the subject predicate of the generic rule
  // (first variable of the first body atom).
  Result<size_t> VarargArity(const GenericRule& gr, const Binding& b) const {
    for (const Literal& lit : gr.body) {
      if (lit.kind != Literal::Kind::kAtom) continue;
      for (const auto& arg : lit.atom.args) {
        if (arg->kind != TermKind::kVar) continue;
        auto it = b.find(arg->name);
        if (it == b.end()) continue;
        auto pred = catalog_.Lookup(it->second);
        if (pred.ok()) return catalog_.decl(pred.value()).arity();
        auto gen = generated_arity_.find(it->second);
        if (gen != generated_arity_.end()) return gen->second;
      }
    }
    return Status::CompileError(
        "cannot determine V* length: the generic rule's subject predicate "
        "has no known arity");
  }

  // Substituted copy of a term; varargs expand externally.
  static TermPtr SubstTerm(const TermPtr& t) { return t; }

  // Expand one atom under `binding`; varargs expand to `vararg_arity` fresh
  // variables Name$i. The result may be multiple literals when the atom is
  // `types[T](V*)`.
  Result<std::vector<Atom>> SubstAtom(const Atom& a, const Binding& binding,
                                      size_t vararg_arity) const {
    Atom out = a;
    // Predicate name metavariable.
    if (out.pred.name_is_metavar) {
      auto it = binding.find(out.pred.name);
      if (it == binding.end()) {
        return Status::CompileError("template metavariable '" +
                                    out.pred.name + "' is unbound");
      }
      out.pred.name = it->second;
      out.pred.name_is_metavar = false;
    }
    // Predicate parameter metavariable -> quoted concrete name.
    if (out.pred.param != nullptr &&
        out.pred.param->kind == TermKind::kVar) {
      auto it = binding.find(out.pred.param->name);
      if (it == binding.end()) {
        return Status::CompileError("template parameter variable '" +
                                    out.pred.param->name + "' is unbound");
      }
      out.pred.param = Term::QuotedPred(it->second);
    }

    // types[`t](V*) expands to the subject's type atoms.
    if (out.pred.name == "types" && out.pred.parameterized()) {
      const std::string& target = out.pred.param->name;
      auto pred = catalog_.Lookup(target);
      if (!pred.ok()) {
        return Status::CompileError("types[...] applied to predicate '" +
                                    target + "' with unknown schema");
      }
      if (out.args.size() != 1 || out.args[0]->kind != TermKind::kVararg) {
        return Status::CompileError("types[...] takes exactly one vararg");
      }
      const std::string& vname = out.args[0]->name;
      const auto& decl = catalog_.decl(pred.value());
      std::vector<Atom> expanded;
      for (size_t i = 0; i < decl.arity() && i < vararg_arity; ++i) {
        Atom t;
        t.pred.name = catalog_.decl(decl.arg_types[i]).name;
        t.args.push_back(Term::Var(vname + "$" + std::to_string(i)));
        t.loc = a.loc;
        expanded.push_back(std::move(t));
      }
      return expanded;
    }

    // Expand varargs in argument positions.
    std::vector<TermPtr> args;
    for (const auto& arg : out.args) {
      if (arg->kind == TermKind::kVararg) {
        for (size_t i = 0; i < vararg_arity; ++i) {
          args.push_back(Term::Var(arg->name + "$" + std::to_string(i)));
        }
      } else {
        args.push_back(SubstTerm(arg));
      }
    }
    out.args = std::move(args);
    return std::vector<Atom>{std::move(out)};
  }

  Result<std::vector<Literal>> SubstLiterals(const std::vector<Literal>& in,
                                             const Binding& binding,
                                             size_t vararg_arity) const {
    std::vector<Literal> out;
    for (const Literal& lit : in) {
      if (lit.kind == Literal::Kind::kCompare) {
        out.push_back(lit);
        continue;
      }
      SB_ASSIGN_OR_RETURN(std::vector<Atom> atoms,
                          SubstAtom(lit.atom, binding, vararg_arity));
      for (Atom& a : atoms) out.push_back(Literal::MakeAtom(std::move(a)));
    }
    return out;
  }

  Status ExpandTemplates(Program* out) {
    std::set<std::string> emitted;  // textual dedupe
    for (const auto& inst : instantiations_) {
      const GenericRule& gr = input_.generic_rules[inst.rule_idx];
      SB_ASSIGN_OR_RETURN(size_t vararg_arity, VarargArity(gr, inst.binding));

      // Record generated predicate arities for nested expansions: the
      // declaring constraint ST(P1,P2,V*) -> ... fixes ST's arity.
      for (const auto& tmpl : gr.templates) {
        for (const ConstraintDecl& c : tmpl.constraints) {
          for (const Literal& lit : c.lhs) {
            if (lit.kind != Literal::Kind::kAtom) continue;
            const Atom& a = lit.atom;
            if (!a.pred.name_is_metavar) continue;
            auto it = inst.binding.find(a.pred.name);
            if (it == inst.binding.end()) continue;
            size_t arity = 0;
            for (const auto& arg : a.args) {
              arity += (arg->kind == TermKind::kVararg) ? vararg_arity : 1;
            }
            generated_arity_[it->second] = arity;
          }
        }
      }

      for (const auto& tmpl : gr.templates) {
        for (const Rule& r : tmpl.rules) {
          Rule gen;
          gen.loc = r.loc;
          gen.agg = r.agg;
          for (const Atom& h : r.heads) {
            SB_ASSIGN_OR_RETURN(std::vector<Atom> atoms,
                                SubstAtom(h, inst.binding, vararg_arity));
            for (Atom& a : atoms) gen.heads.push_back(std::move(a));
          }
          SB_ASSIGN_OR_RETURN(gen.body,
                              SubstLiterals(r.body, inst.binding,
                                            vararg_arity));
          if (emitted.insert("R" + gen.ToString()).second) {
            out->rules.push_back(std::move(gen));
          }
        }
        for (const ConstraintDecl& c : tmpl.constraints) {
          ConstraintDecl gen;
          gen.loc = c.loc;
          SB_ASSIGN_OR_RETURN(gen.lhs,
                              SubstLiterals(c.lhs, inst.binding,
                                            vararg_arity));
          SB_ASSIGN_OR_RETURN(gen.rhs,
                              SubstLiterals(c.rhs, inst.binding,
                                            vararg_arity));
          if (emitted.insert("C" + gen.ToString()).second) {
            out->constraints.push_back(std::move(gen));
          }
        }
      }
    }
    return Status::OK();
  }

  // --- parameterized atom resolution -------------------------------------------

  Status ResolveAtom(Atom* a) const {
    if (a->pred.name_is_metavar) {
      return Status::Internal("unsubstituted metavariable predicate '" +
                              a->pred.name + "'");
    }
    if (!a->pred.parameterized()) return Status::OK();
    if (a->pred.param->kind != TermKind::kQuotedPred) {
      return Status::CompileError("unresolved parameter in atom " +
                                  a->ToString());
    }
    const std::string& param = a->pred.param->name;
    if (meta_.IsFunctional(a->pred.name)) {
      auto resolved = meta_.LookupValue(a->pred.name, {param});
      if (!resolved.ok()) {
        return Status::CompileError(
            "no instance of generic predicate " + a->pred.name + "[`" + param +
            "] — is `" + param + " exportable / covered by a generic rule?");
      }
      a->pred.name = resolved.value();
    } else {
      // Builtin-family mangling: serialize[`path] -> serialize$path.
      a->pred.name = a->pred.name + "$" + param;
    }
    a->pred.param = nullptr;
    return Status::OK();
  }

  Status ResolveProgram(Program* p) const {
    for (Rule& r : p->rules) {
      for (Atom& h : r.heads) SB_RETURN_IF_ERROR(ResolveAtom(&h));
      for (Literal& l : r.body) {
        if (l.kind == Literal::Kind::kAtom) {
          SB_RETURN_IF_ERROR(ResolveAtom(&l.atom));
        }
      }
    }
    for (ConstraintDecl& c : p->constraints) {
      for (auto* side : {&c.lhs, &c.rhs}) {
        for (Literal& l : *side) {
          if (l.kind == Literal::Kind::kAtom) {
            SB_RETURN_IF_ERROR(ResolveAtom(&l.atom));
          }
        }
      }
    }
    return Status::OK();
  }

  const Program& input_;
  BloxGenericsCompiler::Options options_;
  Catalog catalog_;
  MetaDb meta_;
  std::vector<std::string> generated_;
  std::set<std::string> existential_names_;
  std::map<std::string, size_t> generated_arity_;
  std::set<std::string> processed_;
  std::map<std::string, Binding> memo_bindings_;
  struct Instantiation {
    size_t rule_idx;
    Binding binding;
  };
  std::vector<Instantiation> instantiations_;
};

}  // namespace

Result<ExpansionResult> BloxGenericsCompiler::Compile(
    const Program& input) const {
  return CompilerImpl(input, options_).Run();
}

}  // namespace secureblox::generics
