// The BloxGenerics compiler (paper §4): static meta-programming over
// DatalogLB programs.
//
// Pipeline (mirrors Figure 3):
//   1. Build the relational representation of the input program (MetaDb).
//   2. Evaluate generic rules (`<--`) to fixpoint. Head-existential
//      variables create fresh predicates, memoized per body binding; a
//      round/size cap turns non-termination into a compile error
//      (paper §4.1.1).
//   3. Verify generic constraints (`-->`) over the meta fixpoint — before
//      any code generation, so ill-formed programs are rejected at compile
//      time (paper §4.1.4).
//   4. Expand code templates: metavariables substitute to concrete
//      predicate names, `V*` varargs expand to the subject predicate's
//      arity, and `types[T](V*)` expands to the subject's type atoms.
//   5. Resolve parameterized atoms (`says[`reachable]`) everywhere via the
//      meta-database; unresolvable parameters on non-generic names mangle
//      to builtin-family names (`serialize$path`).
//
// The output is a plain DatalogLB program ready for AnalyzeProgram/Install.
#ifndef SECUREBLOX_GENERICS_COMPILER_H_
#define SECUREBLOX_GENERICS_COMPILER_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"
#include "datalog/catalog.h"
#include "generics/meta_db.h"

namespace secureblox::generics {

struct ExpansionResult {
  /// The expanded, generics-free program.
  datalog::Program program;
  /// Names of predicates created by head existentials (e.g. says$path).
  std::vector<std::string> generated_predicates;
  /// Final meta-database (introspection / tests / compile_dump).
  MetaDb meta;
};

class BloxGenericsCompiler {
 public:
  struct Options {
    /// Fixpoint round cap; exceeding it is a compile error (the paper's
    /// compile-time timeout for head-existential non-termination).
    int max_rounds = 64;
    /// Cap on generated predicates.
    size_t max_generated = 4096;
  };

  BloxGenericsCompiler() : options_(Options()) {}
  explicit BloxGenericsCompiler(Options options) : options_(options) {}

  /// Compile `input` (object clauses + generic clauses + meta facts) into a
  /// plain object-level program.
  Result<ExpansionResult> Compile(const datalog::Program& input) const;

 private:
  Options options_;
};

}  // namespace secureblox::generics

#endif  // SECUREBLOX_GENERICS_COMPILER_H_
