// The meta-database: a relational representation of DatalogLB programs.
//
// BloxGenerics rules compute over *program elements*. The meta-universe is
// string-identified: predicate names and rule ids. Built-in generic
// predicates (paper §4.1.1):
//   predicate(p)   — all declared predicates
//   rule(r)        — all rules (ids rule$0, rule$1, ...)
//   ruleHead(r, p) — rule r derives predicate p
//   ruleBody(r, p) — rule r reads predicate p
// User-declared generic predicates (`says[T]=ST`, `exportable(T)`, ...) are
// registered implicitly on first use.
#ifndef SECUREBLOX_GENERICS_META_DB_H_
#define SECUREBLOX_GENERICS_META_DB_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"

namespace secureblox::generics {

/// A tuple in the meta-database: a vector of program-element names.
using MetaTuple = std::vector<std::string>;

class MetaDb {
 public:
  /// Register (or verify) a generic predicate's shape. Functional generic
  /// predicates (`says[T]=ST`) enforce an FD from keys to the value.
  Status Declare(const std::string& name, size_t arity, bool functional);

  bool IsDeclared(const std::string& name) const;
  bool IsFunctional(const std::string& name) const;
  size_t Arity(const std::string& name) const;

  /// Insert a tuple. Returns true if new. FD conflicts are CompileErrors
  /// (two generic rules derived different instances for the same keys).
  Result<bool> Insert(const std::string& name, MetaTuple tuple);

  const std::vector<MetaTuple>& Tuples(const std::string& name) const;

  /// Functional lookup: value for `keys`, or NotFound.
  Result<std::string> LookupValue(const std::string& name,
                                  const MetaTuple& keys) const;

  /// All relation names (for debugging / introspection).
  std::vector<std::string> RelationNames() const;

 private:
  struct GenericPred {
    size_t arity = 0;
    bool functional = false;
    std::vector<MetaTuple> tuples;
    std::set<MetaTuple> index;
    std::map<MetaTuple, std::string> fd;  // keys -> value
  };
  std::map<std::string, GenericPred> preds_;
};

}  // namespace secureblox::generics

#endif  // SECUREBLOX_GENERICS_META_DB_H_
