#include "net/udp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace secureblox::net {

namespace {
constexpr size_t kMaxDatagram = 65507;  // UDP payload limit

Result<sockaddr_in> ToSockaddr(const UdpEndpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    return Status::IoError("bad IPv4 address '" + ep.host + "'");
  }
  return addr;
}
}  // namespace

Result<UdpTransport> UdpTransport::Bind(NodeIndex self,
                                        std::vector<UdpEndpoint> endpoints) {
  if (self >= endpoints.size()) {
    return Status::InvalidArgument("self index out of range");
  }
  UdpTransport t;
  t.self_ = self;
  t.endpoints_ = std::move(endpoints);

  t.fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (t.fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  SB_ASSIGN_OR_RETURN(sockaddr_in addr, ToSockaddr(t.endpoints_[self]));
  if (::bind(t.fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(t.fd_);
    t.fd_ = -1;
    return Status::IoError(std::string("bind: ") + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(t.fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    t.local_port_ = ntohs(bound.sin_port);
    t.endpoints_[self].port = t.local_port_;
  }
  int flags = ::fcntl(t.fd_, F_GETFL, 0);
  ::fcntl(t.fd_, F_SETFL, flags | O_NONBLOCK);
  return t;
}

UdpTransport::UdpTransport(UdpTransport&& o) noexcept { *this = std::move(o); }

UdpTransport& UdpTransport::operator=(UdpTransport&& o) noexcept {
  if (this != &o) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = o.fd_;
    o.fd_ = -1;
    self_ = o.self_;
    local_port_ = o.local_port_;
    endpoints_ = std::move(o.endpoints_);
    bytes_sent_ = o.bytes_sent_;
    bytes_received_ = o.bytes_received_;
  }
  return *this;
}

UdpTransport::~UdpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

void UdpTransport::SetEndpoint(NodeIndex peer, UdpEndpoint ep) {
  if (peer >= endpoints_.size()) endpoints_.resize(peer + 1);
  endpoints_[peer] = std::move(ep);
}

Status UdpTransport::Send(NodeIndex dst, const Bytes& payload) {
  if (dst >= endpoints_.size()) {
    return Status::InvalidArgument("unknown peer " + std::to_string(dst));
  }
  if (payload.size() > kMaxDatagram) {
    return Status::IoError("payload exceeds UDP datagram limit (" +
                           std::to_string(payload.size()) + " bytes)");
  }
  SB_ASSIGN_OR_RETURN(sockaddr_in addr, ToSockaddr(endpoints_[dst]));
  ssize_t sent = ::sendto(fd_, payload.data(), payload.size(), 0,
                          reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (sent < 0 || static_cast<size_t>(sent) != payload.size()) {
    return Status::IoError(std::string("sendto: ") + std::strerror(errno));
  }
  bytes_sent_ += payload.size();
  return Status::OK();
}

Result<std::optional<Bytes>> UdpTransport::Poll() {
  Bytes buf(kMaxDatagram);
  ssize_t n = ::recvfrom(fd_, buf.data(), buf.size(), 0, nullptr, nullptr);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return std::optional<Bytes>();
    }
    return Status::IoError(std::string("recvfrom: ") + std::strerror(errno));
  }
  buf.resize(static_cast<size_t>(n));
  bytes_received_ += buf.size();
  return std::optional<Bytes>(std::move(buf));
}

Result<std::optional<Bytes>> UdpTransport::PollFor(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc < 0) {
    return Status::IoError(std::string("poll: ") + std::strerror(errno));
  }
  if (rc == 0) return std::optional<Bytes>();
  return Poll();
}

}  // namespace secureblox::net
