// Wire format for inter-node fact batches and for value serialization.
//
// Values serialize with a kind tag; entities serialize as (type name,
// label) so the receiving node can re-intern them in its own catalog —
// entity intern ids are node-local, labels are global.
//
// Batch layout (all integers big-endian, strings/blobs varint-length
// prefixed):
//   magic "SB" | version u16 | src u32 | dst u32 | origin u32
//     | route_shard u32 | map_epoch u64 | #entries varint
//   entry: pred name | kind u8 | #tuples varint | tuple: #values varint
//     | values... [| support varint | base u8  (kind = handoff only)]
//
// v2 adds the shard-routing fields and the per-entry kind. `route_shard`
// is kNoShard for ordinary export batches; placement batches carry the
// target shard plus the sender's shard-map epoch so a receiver that is no
// longer (or not yet) the owner can re-route instead of dropping, and
// `origin` survives forwarding hops (src is rewritten per hop, origin is
// the staging node). Entry kinds distinguish plain facts from placement
// deltas (engine/placement.h); handoff rows carry a support count and a
// base flag per tuple.
#ifndef SECUREBLOX_NET_WIRE_H_
#define SECUREBLOX_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "datalog/catalog.h"
#include "engine/tuple.h"

namespace secureblox::net {

/// Logical node index within a deployment (maps to an address).
using NodeIndex = uint32_t;

constexpr uint16_t kWireVersion = 2;

/// route_shard value for batches that are not shard-routed.
constexpr uint32_t kNoShard = 0xFFFFFFFFu;

/// Per-entry payload kind. kFacts is the pre-placement export path
/// (plain fact insertions); the rest mirror engine::RemoteDelta::Kind.
enum class WireEntryKind : uint8_t {
  kFacts = 0,
  kBaseInsert = 1,
  kBaseDelete = 2,
  kSupportAdd = 3,
  kSupportDrop = 4,
  kHandoff = 5,
};

/// Serialize one value (catalog needed for entity labels).
Status SerializeValue(ByteWriter* w, const datalog::Value& v,
                      const datalog::Catalog& catalog);

/// Deserialize one value; entities are interned into `catalog`.
Result<datalog::Value> DeserializeValue(ByteReader* r,
                                        datalog::Catalog* catalog);

Status SerializeTuple(ByteWriter* w, const engine::Tuple& t,
                      const datalog::Catalog& catalog);
Result<engine::Tuple> DeserializeTuple(ByteReader* r,
                                       datalog::Catalog* catalog);

/// A batch of facts or placement deltas shipped to one node.
struct WireBatch {
  NodeIndex src = 0;
  NodeIndex dst = 0;
  /// Node that staged the batch (= src until a re-route hop rewrites src).
  NodeIndex origin = 0;
  /// Target shard for placement batches, kNoShard for exports.
  uint32_t route_shard = kNoShard;
  /// Sender's shard-map epoch when the batch was staged.
  uint64_t map_epoch = 0;
  struct Entry {
    std::string pred;
    WireEntryKind kind = WireEntryKind::kFacts;
    std::vector<engine::Tuple> tuples;
    /// kHandoff only, parallel to `tuples`: derivation-support counts and
    /// base-fact flags travelling with the snapshot rows.
    std::vector<uint32_t> supports;
    std::vector<uint8_t> base_flags;
  };
  std::vector<Entry> entries;

  size_t TotalTuples() const {
    size_t n = 0;
    for (const auto& e : entries) n += e.tuples.size();
    return n;
  }
};

Result<Bytes> EncodeBatch(const WireBatch& batch,
                          const datalog::Catalog& catalog);
Result<WireBatch> DecodeBatch(const Bytes& payload,
                              datalog::Catalog* catalog);

/// Total tuples in an encoded batch, by structural parse only: values are
/// skipped, nothing is interned, no catalog is needed — safe to run on a
/// receive thread concurrently with the apply loop. The size limits match
/// DecodeBatch. Used to validate sender-declared tuple-count hints before
/// they feed batching accounting (the hint rides outside the seal, so it
/// is attacker-controlled even when the payload authenticates).
Result<size_t> CountBatchTuples(const Bytes& payload);

/// Routing fields of an encoded batch, parsed structurally (header only,
/// no interning, no catalog): the apply loop consults them before full
/// decode to decide whether a placement batch applies here, forwards to
/// the current shard owner, or gets rejected.
struct BatchRouting {
  NodeIndex src = 0;
  NodeIndex dst = 0;
  NodeIndex origin = 0;
  uint32_t route_shard = kNoShard;
  uint64_t map_epoch = 0;
};
Result<BatchRouting> PeekBatchRouting(const Bytes& payload);

}  // namespace secureblox::net

#endif  // SECUREBLOX_NET_WIRE_H_
