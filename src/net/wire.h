// Wire format for inter-node fact batches and for value serialization.
//
// Values serialize with a kind tag; entities serialize as (type name,
// label) so the receiving node can re-intern them in its own catalog —
// entity intern ids are node-local, labels are global.
//
// Batch layout (all integers big-endian, strings/blobs varint-length
// prefixed):
//   magic "SB" | version u16 | src u32 | dst u32 | #entries varint
//   entry: pred name | #tuples varint | tuple: #values varint | values...
#ifndef SECUREBLOX_NET_WIRE_H_
#define SECUREBLOX_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "datalog/catalog.h"
#include "engine/tuple.h"

namespace secureblox::net {

/// Logical node index within a deployment (maps to an address).
using NodeIndex = uint32_t;

constexpr uint16_t kWireVersion = 1;

/// Serialize one value (catalog needed for entity labels).
Status SerializeValue(ByteWriter* w, const datalog::Value& v,
                      const datalog::Catalog& catalog);

/// Deserialize one value; entities are interned into `catalog`.
Result<datalog::Value> DeserializeValue(ByteReader* r,
                                        datalog::Catalog* catalog);

Status SerializeTuple(ByteWriter* w, const engine::Tuple& t,
                      const datalog::Catalog& catalog);
Result<engine::Tuple> DeserializeTuple(ByteReader* r,
                                       datalog::Catalog* catalog);

/// A batch of fact insertions shipped to one node.
struct WireBatch {
  NodeIndex src = 0;
  NodeIndex dst = 0;
  struct Entry {
    std::string pred;
    std::vector<engine::Tuple> tuples;
  };
  std::vector<Entry> entries;

  size_t TotalTuples() const {
    size_t n = 0;
    for (const auto& e : entries) n += e.tuples.size();
    return n;
  }
};

Result<Bytes> EncodeBatch(const WireBatch& batch,
                          const datalog::Catalog& catalog);
Result<WireBatch> DecodeBatch(const Bytes& payload,
                              datalog::Catalog* catalog);

/// Total tuples in an encoded batch, by structural parse only: values are
/// skipped, nothing is interned, no catalog is needed — safe to run on a
/// receive thread concurrently with the apply loop. The size limits match
/// DecodeBatch. Used to validate sender-declared tuple-count hints before
/// they feed batching accounting (the hint rides outside the seal, so it
/// is attacker-controlled even when the payload authenticates).
Result<size_t> CountBatchTuples(const Bytes& payload);

}  // namespace secureblox::net

#endif  // SECUREBLOX_NET_WIRE_H_
