// Discrete-event network simulator.
//
// Substitutes for the paper's 36-node Gigabit-Ethernet cluster: messages
// incur base latency plus a size-proportional serialization delay (plus
// deterministic jitter), and per-node bytes/messages are accounted exactly
// — the quantities Figures 6 and 12 report.
#ifndef SECUREBLOX_NET_SIM_NET_H_
#define SECUREBLOX_NET_SIM_NET_H_

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "common/bytes.h"
#include "common/random.h"
#include "net/wire.h"

namespace secureblox::net {

/// Event-queue network with a latency/bandwidth model.
class SimNet {
 public:
  struct Config {
    /// One-way base latency (switch + kernel), seconds. GbE LAN default.
    double base_latency_s = 100e-6;
    /// Link bandwidth in bytes/second (1 Gb/s default).
    double bandwidth_bytes_per_s = 125e6;
    /// Uniform jitter fraction of base latency.
    double jitter_frac = 0.2;
    uint64_t seed = 1;
  };

  SimNet() : SimNet(Config()) {}
  explicit SimNet(Config config) : config_(config), rng_(config.seed) {}

  struct Delivery {
    double time_s = 0;
    NodeIndex src = 0;
    NodeIndex dst = 0;
    Bytes payload;
    uint64_t seq = 0;  // FIFO tie-break
    /// Sender-declared tuple count (coalescing granularity accounting;
    /// the receiver never trusts it for anything but batch sizing).
    size_t tuple_hint = 1;

    bool operator>(const Delivery& o) const {
      if (time_s != o.time_s) return time_s > o.time_s;
      return seq > o.seq;
    }
  };

  /// Enqueue a message sent at `now_s`; it is delivered after the modeled
  /// delay. Updates byte accounting.
  void Send(NodeIndex src, NodeIndex dst, Bytes payload, double now_s,
            size_t tuple_hint = 1);

  /// Earliest undelivered message, or nullopt when the network is idle.
  std::optional<Delivery> PopNext();
  /// Arrival time of the earliest in-flight message (delivery scheduling
  /// peeks before committing to start a coalesced transaction).
  std::optional<double> PeekNextTime() const;
  bool empty() const { return queue_.empty(); }

  // -- accounting (per node) -------------------------------------------------

  uint64_t bytes_sent(NodeIndex n) const { return Get(sent_bytes_, n); }
  uint64_t bytes_received(NodeIndex n) const { return Get(recv_bytes_, n); }
  uint64_t messages_sent(NodeIndex n) const { return Get(sent_msgs_, n); }
  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t total_messages() const { return seq_; }

 private:
  static uint64_t Get(const std::vector<uint64_t>& v, NodeIndex n) {
    return n < v.size() ? v[n] : 0;
  }
  static void Bump(std::vector<uint64_t>* v, NodeIndex n, uint64_t by) {
    if (n >= v->size()) v->resize(n + 1, 0);
    (*v)[n] += by;
  }

  Config config_;
  Xoshiro256 rng_;
  std::priority_queue<Delivery, std::vector<Delivery>, std::greater<>> queue_;
  std::vector<uint64_t> sent_bytes_, recv_bytes_, sent_msgs_;
  uint64_t seq_ = 0;
  uint64_t total_bytes_ = 0;
};

}  // namespace secureblox::net

#endif  // SECUREBLOX_NET_SIM_NET_H_
