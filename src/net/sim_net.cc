#include "net/sim_net.h"

namespace secureblox::net {

void SimNet::Send(NodeIndex src, NodeIndex dst, Bytes payload, double now_s,
                  size_t tuple_hint) {
  size_t size = payload.size();
  double delay = config_.base_latency_s +
                 static_cast<double>(size) / config_.bandwidth_bytes_per_s;
  delay += config_.base_latency_s * config_.jitter_frac * rng_.UniformDouble();

  Delivery d;
  d.time_s = now_s + delay;
  d.src = src;
  d.dst = dst;
  d.seq = seq_++;
  d.tuple_hint = tuple_hint > 0 ? tuple_hint : 1;
  Bump(&sent_bytes_, src, size);
  Bump(&recv_bytes_, dst, size);
  Bump(&sent_msgs_, src, 1);
  total_bytes_ += size;
  d.payload = std::move(payload);
  queue_.push(std::move(d));
}

std::optional<SimNet::Delivery> SimNet::PopNext() {
  if (queue_.empty()) return std::nullopt;
  Delivery d = queue_.top();
  queue_.pop();
  return d;
}

std::optional<double> SimNet::PeekNextTime() const {
  if (queue_.empty()) return std::nullopt;
  return queue_.top().time_s;
}

}  // namespace secureblox::net
