// Real UDP transport (POSIX sockets) for live deployments.
//
// The paper's SecureBlox instances "exchange messages over UDP"; this
// transport provides the same datagram semantics for running nodes as
// separate endpoints (the examples use localhost).
#ifndef SECUREBLOX_NET_UDP_TRANSPORT_H_
#define SECUREBLOX_NET_UDP_TRANSPORT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "net/wire.h"

namespace secureblox::net {

/// IPv4 endpoint.
struct UdpEndpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

/// One node's UDP socket plus the address book of all peers.
class UdpTransport {
 public:
  /// Bind a socket for node `self` at `endpoints[self]`. A port of 0 in
  /// the self endpoint picks an ephemeral port (readable via local_port()).
  static Result<UdpTransport> Bind(NodeIndex self,
                                   std::vector<UdpEndpoint> endpoints);

  UdpTransport(UdpTransport&& o) noexcept;
  UdpTransport& operator=(UdpTransport&& o) noexcept;
  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;
  ~UdpTransport();

  /// Datagram to peer `dst`.
  Status Send(NodeIndex dst, const Bytes& payload);

  /// Non-blocking receive; nullopt when no datagram is pending.
  Result<std::optional<Bytes>> Poll();

  /// Blocking receive with timeout; nullopt on timeout.
  Result<std::optional<Bytes>> PollFor(int timeout_ms);

  /// Update a peer's endpoint (e.g. after it bound an ephemeral port).
  void SetEndpoint(NodeIndex peer, UdpEndpoint ep);

  uint16_t local_port() const { return local_port_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }

 private:
  UdpTransport() = default;

  int fd_ = -1;
  NodeIndex self_ = 0;
  uint16_t local_port_ = 0;
  std::vector<UdpEndpoint> endpoints_;
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
};

}  // namespace secureblox::net

#endif  // SECUREBLOX_NET_UDP_TRANSPORT_H_
