#include "net/wire.h"

namespace secureblox::net {

using datalog::Value;
using datalog::ValueKind;

namespace {

/// Skip one serialized value by structure alone — the single source of
/// the per-kind wire layout for consumers that must not intern (the
/// receive-thread tuple counter). DeserializeValue reads the same shapes;
/// a new ValueKind must extend both switches (the compiler flags the one
/// here via the default-free enum switch warning in DeserializeValue).
Status SkipValue(ByteReader* r) {
  SB_ASSIGN_OR_RETURN(uint8_t kind_byte, r->GetU8());
  if (kind_byte > static_cast<uint8_t>(ValueKind::kEntity)) {
    return Status::InvalidArgument("bad value kind tag on wire");
  }
  switch (static_cast<ValueKind>(kind_byte)) {
    case ValueKind::kBool:
      return r->GetU8().status();
    case ValueKind::kInt:
      return r->GetU64().status();
    case ValueKind::kString:
    case ValueKind::kBlob:
      return r->GetLengthPrefixed().status();
    case ValueKind::kEntity:
      SB_RETURN_IF_ERROR(r->GetLengthPrefixed().status());  // type name
      return r->GetLengthPrefixed().status();               // label
  }
  return Status::Internal("unreachable");
}

/// Parse the batch header (magic, version, routing fields, entry count) —
/// shared by DecodeBatch, CountBatchTuples, and PeekBatchRouting so the
/// grammar cannot drift between them.
Status ReadBatchHeader(ByteReader* r, BatchRouting* routing,
                       uint64_t* num_entries) {
  SB_ASSIGN_OR_RETURN(uint8_t m1, r->GetU8());
  SB_ASSIGN_OR_RETURN(uint8_t m2, r->GetU8());
  if (m1 != 'S' || m2 != 'B') {
    return Status::InvalidArgument("bad wire magic");
  }
  SB_ASSIGN_OR_RETURN(uint16_t version, r->GetU16());
  if (version != kWireVersion) {
    return Status::InvalidArgument("unsupported wire version " +
                                   std::to_string(version));
  }
  SB_ASSIGN_OR_RETURN(routing->src, r->GetU32());
  SB_ASSIGN_OR_RETURN(routing->dst, r->GetU32());
  SB_ASSIGN_OR_RETURN(routing->origin, r->GetU32());
  SB_ASSIGN_OR_RETURN(routing->route_shard, r->GetU32());
  SB_ASSIGN_OR_RETURN(routing->map_epoch, r->GetU64());
  SB_ASSIGN_OR_RETURN(*num_entries, r->GetVarint());
  if (*num_entries > 1 << 20) {
    return Status::InvalidArgument("batch too large on wire");
  }
  return Status::OK();
}

}  // namespace

Status SerializeValue(ByteWriter* w, const Value& v,
                      const datalog::Catalog& catalog) {
  w->PutU8(static_cast<uint8_t>(v.kind()));
  switch (v.kind()) {
    case ValueKind::kBool:
      w->PutU8(v.AsBool() ? 1 : 0);
      return Status::OK();
    case ValueKind::kInt:
      w->PutU64(static_cast<uint64_t>(v.AsInt()));
      return Status::OK();
    case ValueKind::kString:
    case ValueKind::kBlob:
      w->PutLengthPrefixedString(v.BlobRef());
      return Status::OK();
    case ValueKind::kEntity: {
      SB_ASSIGN_OR_RETURN(std::string label, catalog.EntityLabel(v));
      w->PutLengthPrefixedString(catalog.decl(v.entity_type()).name);
      w->PutLengthPrefixedString(label);
      return Status::OK();
    }
  }
  return Status::Internal("bad value kind");
}

Result<Value> DeserializeValue(ByteReader* r, datalog::Catalog* catalog) {
  SB_ASSIGN_OR_RETURN(uint8_t kind_byte, r->GetU8());
  if (kind_byte > static_cast<uint8_t>(ValueKind::kEntity)) {
    return Status::InvalidArgument("bad value kind tag on wire");
  }
  switch (static_cast<ValueKind>(kind_byte)) {
    case ValueKind::kBool: {
      SB_ASSIGN_OR_RETURN(uint8_t b, r->GetU8());
      return Value::Bool(b != 0);
    }
    case ValueKind::kInt: {
      SB_ASSIGN_OR_RETURN(uint64_t v, r->GetU64());
      return Value::Int(static_cast<int64_t>(v));
    }
    case ValueKind::kString: {
      SB_ASSIGN_OR_RETURN(std::string s, r->GetLengthPrefixedString());
      return Value::Str(std::move(s));
    }
    case ValueKind::kBlob: {
      SB_ASSIGN_OR_RETURN(Bytes b, r->GetLengthPrefixed());
      return Value::MakeBlob(std::move(b));
    }
    case ValueKind::kEntity: {
      SB_ASSIGN_OR_RETURN(std::string type_name, r->GetLengthPrefixedString());
      SB_ASSIGN_OR_RETURN(std::string label, r->GetLengthPrefixedString());
      SB_ASSIGN_OR_RETURN(datalog::PredId type, catalog->Lookup(type_name));
      if (!catalog->decl(type).is_entity_type) {
        return Status::InvalidArgument("wire entity type '" + type_name +
                                       "' is not an entity type here");
      }
      return catalog->InternEntity(type, label);
    }
  }
  return Status::Internal("unreachable");
}

Status SerializeTuple(ByteWriter* w, const engine::Tuple& t,
                      const datalog::Catalog& catalog) {
  w->PutVarint(t.size());
  for (const Value& v : t) {
    SB_RETURN_IF_ERROR(SerializeValue(w, v, catalog));
  }
  return Status::OK();
}

Result<engine::Tuple> DeserializeTuple(ByteReader* r,
                                       datalog::Catalog* catalog) {
  SB_ASSIGN_OR_RETURN(uint64_t n, r->GetVarint());
  if (n > 1 << 20) return Status::InvalidArgument("tuple too large on wire");
  engine::Tuple t;
  t.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    SB_ASSIGN_OR_RETURN(Value v, DeserializeValue(r, catalog));
    t.push_back(std::move(v));
  }
  return t;
}

Result<Bytes> EncodeBatch(const WireBatch& batch,
                          const datalog::Catalog& catalog) {
  ByteWriter w;
  w.PutU8('S');
  w.PutU8('B');
  w.PutU16(kWireVersion);
  w.PutU32(batch.src);
  w.PutU32(batch.dst);
  w.PutU32(batch.origin);
  w.PutU32(batch.route_shard);
  w.PutU64(batch.map_epoch);
  w.PutVarint(batch.entries.size());
  for (const auto& entry : batch.entries) {
    const bool handoff = entry.kind == WireEntryKind::kHandoff;
    if (handoff && (entry.supports.size() != entry.tuples.size() ||
                    entry.base_flags.size() != entry.tuples.size())) {
      return Status::InvalidArgument(
          "handoff entry needs one support/base flag per tuple");
    }
    w.PutLengthPrefixedString(entry.pred);
    w.PutU8(static_cast<uint8_t>(entry.kind));
    w.PutVarint(entry.tuples.size());
    for (size_t i = 0; i < entry.tuples.size(); ++i) {
      SB_RETURN_IF_ERROR(SerializeTuple(&w, entry.tuples[i], catalog));
      if (handoff) {
        w.PutVarint(entry.supports[i]);
        w.PutU8(entry.base_flags[i] ? 1 : 0);
      }
    }
  }
  return w.Take();
}

Result<WireBatch> DecodeBatch(const Bytes& payload,
                              datalog::Catalog* catalog) {
  ByteReader r(payload);
  WireBatch batch;
  BatchRouting routing;
  uint64_t num_entries = 0;
  SB_RETURN_IF_ERROR(ReadBatchHeader(&r, &routing, &num_entries));
  batch.src = routing.src;
  batch.dst = routing.dst;
  batch.origin = routing.origin;
  batch.route_shard = routing.route_shard;
  batch.map_epoch = routing.map_epoch;
  for (uint64_t i = 0; i < num_entries; ++i) {
    WireBatch::Entry entry;
    SB_ASSIGN_OR_RETURN(entry.pred, r.GetLengthPrefixedString());
    SB_ASSIGN_OR_RETURN(uint8_t kind_byte, r.GetU8());
    if (kind_byte > static_cast<uint8_t>(WireEntryKind::kHandoff)) {
      return Status::InvalidArgument("bad entry kind tag on wire");
    }
    entry.kind = static_cast<WireEntryKind>(kind_byte);
    const bool handoff = entry.kind == WireEntryKind::kHandoff;
    SB_ASSIGN_OR_RETURN(uint64_t num_tuples, r.GetVarint());
    if (num_tuples > 1 << 20) {
      return Status::InvalidArgument("entry too large on wire");
    }
    for (uint64_t j = 0; j < num_tuples; ++j) {
      SB_ASSIGN_OR_RETURN(engine::Tuple t, DeserializeTuple(&r, catalog));
      entry.tuples.push_back(std::move(t));
      if (handoff) {
        SB_ASSIGN_OR_RETURN(uint64_t support, r.GetVarint());
        if (support > 0xFFFFFFFFull) {
          return Status::InvalidArgument("handoff support count too large");
        }
        SB_ASSIGN_OR_RETURN(uint8_t base, r.GetU8());
        entry.supports.push_back(static_cast<uint32_t>(support));
        entry.base_flags.push_back(base != 0 ? 1 : 0);
      }
    }
    batch.entries.push_back(std::move(entry));
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after wire batch");
  }
  return batch;
}

Result<size_t> CountBatchTuples(const Bytes& payload) {
  ByteReader r(payload);
  BatchRouting routing;
  uint64_t num_entries = 0;
  SB_RETURN_IF_ERROR(ReadBatchHeader(&r, &routing, &num_entries));
  size_t total = 0;
  for (uint64_t i = 0; i < num_entries; ++i) {
    SB_RETURN_IF_ERROR(r.GetLengthPrefixed().status());  // pred name
    SB_ASSIGN_OR_RETURN(uint8_t kind_byte, r.GetU8());
    if (kind_byte > static_cast<uint8_t>(WireEntryKind::kHandoff)) {
      return Status::InvalidArgument("bad entry kind tag on wire");
    }
    const bool handoff =
        static_cast<WireEntryKind>(kind_byte) == WireEntryKind::kHandoff;
    SB_ASSIGN_OR_RETURN(uint64_t num_tuples, r.GetVarint());
    if (num_tuples > 1 << 20) {
      return Status::InvalidArgument("entry too large on wire");
    }
    for (uint64_t j = 0; j < num_tuples; ++j) {
      SB_ASSIGN_OR_RETURN(uint64_t arity, r.GetVarint());
      if (arity > 1 << 20) {
        return Status::InvalidArgument("tuple too large on wire");
      }
      for (uint64_t k = 0; k < arity; ++k) {
        SB_RETURN_IF_ERROR(SkipValue(&r));
      }
      if (handoff) {
        SB_RETURN_IF_ERROR(r.GetVarint().status());  // support
        SB_RETURN_IF_ERROR(r.GetU8().status());      // base flag
      }
    }
    total += num_tuples;
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after wire batch");
  }
  return total;
}

Result<BatchRouting> PeekBatchRouting(const Bytes& payload) {
  ByteReader r(payload);
  BatchRouting routing;
  uint64_t num_entries = 0;
  SB_RETURN_IF_ERROR(ReadBatchHeader(&r, &routing, &num_entries));
  return routing;
}

}  // namespace secureblox::net
