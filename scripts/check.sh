#!/usr/bin/env bash
# Tier-1 verify: configure, build, run the test suite, and smoke the
# engine microbenchmarks plus one figure harness in quick mode.
#
#   scripts/check.sh [build-dir]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

cmake -B "$build" -S "$repo"
cmake --build "$build" -j "$(nproc)"
ctest --test-dir "$build" --output-on-failure -j "$(nproc)"

# Smoke: engine microbenchmarks (single rep, tiny time budget) and the
# fig04 harness on the CI-friendly sweep.
if [ -x "$build/micro_engine" ]; then
  "$build/micro_engine" --benchmark_min_time=0.01 \
      --benchmark_filter='BM_(TransitiveClosureChain|FixpointDependencyIndex)'
  # Parallel fixpoint scaling curves on the fig08/fig10 flavoured
  # workloads: 1/2/4/8 workers at the unsharded layout plus the
  # shard-scaling curve (SB_SHARDS 1/4/8 at one and four workers),
  # recorded so the perf trajectory is tracked. The shards:1 rows double
  # as the regression gate for shard-aligned chunking.
  "$build/micro_engine" --benchmark_min_time=0.05 \
      --benchmark_filter='BM_ParallelFixpoint(Convergence|Join)' \
      --benchmark_out="$build/BENCH_fixpoint.json" \
      --benchmark_out_format=json
  echo "wrote $build/BENCH_fixpoint.json"
fi
# Sharded-storage determinism smoke: the storage/fixpoint suites at a
# prime shard count (SB_SHARDS routes every relation through the
# hash-partitioned layout; results must be byte-identical).
SB_SHARDS=7 ctest --test-dir "$build" --output-on-failure -j "$(nproc)" \
    -R 'relation_test|parallel_test|engine_test|delete_test'
# Counting-deletion smoke: per-delete work must not scale with the
# database (see the seeded/iter and retract_firings/iter counters).
if [ -x "$build/micro_delete" ]; then
  "$build/micro_delete" --benchmark_min_time=0.01 \
      --benchmark_filter='BM_(CountingDeleteFlat|GroupLocalDRedScoped)'
fi
SB_QUICK=1 SB_MAX_NODES=6 "$build/fig04_fixpoint_latency"

# Distribution-layer sweeps, merged into BENCH_dist.json:
#   - transaction granularity (§5.2): batch = 1/4/64/∞ on the fig06
#     path-vector workload; exits nonzero unless coalescing (batch ∞)
#     sends fewer messages than one-transaction-per-message (batch 1);
#   - shard-placement scale-out: the placed-closure workload on 1/6/18
#     nodes, recording per-node relation_*_bytes gauges and convergence;
#     exits nonzero unless the max per-node footprint at 6 nodes is
#     < 60% of the 1-node figure and the 18-node run converges with the
#     identical placed fixpoint.
SB_QUICK=1 SB_BENCH_OUT="$build/BENCH_txn.json" "$build/abl_txn_granularity"
SB_QUICK=1 SB_BENCH_OUT="$build/BENCH_placement.json" "$build/abl_placement"
{
  printf '{\n"txn_granularity": '
  cat "$build/BENCH_txn.json"
  printf ',\n"placement": '
  cat "$build/BENCH_placement.json"
  printf '}\n'
} > "$build/BENCH_dist.json"
echo "wrote $build/BENCH_dist.json"
# Placement determinism smoke: the partitioned-placement suite at the
# prime storage shard count (routing, handoff, invariance matrix).
SB_SHARDS=7 ctest --test-dir "$build" --output-on-failure -j "$(nproc)" \
    -R 'placement_test|dist_test'

# Cost-based planner A/B (SB_PLAN): worst-ordered join plus an
# already-well-ordered recursion, recorded as BENCH_plan.json. The
# harness exits nonzero unless planner-on is >= 1.5x faster on the
# adversarial join and within 1.35x on the well-ordered workload.
SB_QUICK=1 SB_TRIALS=3 SB_BENCH_OUT="$build/BENCH_plan.json" \
    "$build/abl_plan_ab"
echo "wrote $build/BENCH_plan.json"
# Planner-off smoke: the baseline written-order paths must stay green.
SB_PLAN=0 ctest --test-dir "$build" --output-on-failure -j "$(nproc)" \
    -R 'engine_test|parallel_test|delete_test|planner_test'

# Columnar storage A/B (SB_COLUMNAR): wide string-heavy filter join plus
# a narrow row-at-a-time recursion, recorded as BENCH_column.json. The
# harness exits nonzero unless columnar-on wins the wide workload
# (>= 1.10x) and stays within 1.35x on the narrow one.
SB_QUICK=1 SB_TRIALS=3 SB_BENCH_OUT="$build/BENCH_column.json" \
    "$build/abl_column_ab"
echo "wrote $build/BENCH_column.json"
# Row-layout smoke: the row-major storage paths must stay green.
SB_COLUMNAR=0 ctest --test-dir "$build" --output-on-failure -j "$(nproc)" \
    -R 'engine_test|parallel_test|delete_test|relation_test|planner_test'

# Query serving (engine/query): magic-sets point queries vs the full
# fixpoint on a five-family closure program, recorded as
# BENCH_serve.json. The harness exits nonzero unless the cold point
# query touches < 25% of the fixpoint's derived tuples and rule
# firings, and its answers match the materialized reference; seed and
# warm (epoch-validated snapshot) QPS are recorded alongside.
SB_QUICK=1 SB_BENCH_OUT="$build/BENCH_serve.json" "$build/serve_qps"
echo "wrote $build/BENCH_serve.json"
# Query-path determinism smoke: the query/fixpoint differential suites
# across the planner/columnar/shard matrix the tentpole pins.
SB_SHARDS=7 ctest --test-dir "$build" --output-on-failure -j "$(nproc)" \
    -R 'query_test|query_fuzz_test|udp_cluster_test'

# SIMD kernel A/B (SB_SIMD): wide selective batch scan plus a narrow
# recursion, recorded as BENCH_simd.json. On AVX2 hosts the harness
# exits nonzero unless auto beats scalar >= 1.25x on the wide scan; the
# wide gate auto-skips (with a logged note) elsewhere. Everywhere, auto
# must stay within 1.10x of scalar on the narrow workload.
SB_QUICK=1 SB_TRIALS=3 SB_BENCH_OUT="$build/BENCH_simd.json" \
    "$build/abl_simd_ab"
echo "wrote $build/BENCH_simd.json"
# Scalar-kernel smoke: the SB_SIMD=0 paths must stay green.
SB_SIMD=0 ctest --test-dir "$build" --output-on-failure -j "$(nproc)" \
    -R 'engine_test|parallel_test|delete_test|relation_test|planner_test|kernels_test'

echo "check.sh: OK"
